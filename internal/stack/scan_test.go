package stack

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
	"unsafe"
)

// scanAll drains a Scanner over the dump, mirroring Parse's contract.
func scanAll(dump string) ([]*Goroutine, error) {
	gs, _, err := scanAllCounting(dump)
	return gs, err
}

// scanAllCounting drains a Scanner and also reports the malformed-member
// resync count.
func scanAllCounting(dump string) ([]*Goroutine, int, error) {
	sc := NewScanner(strings.NewReader(dump))
	var out []*Goroutine
	for sc.Scan() {
		out = append(out, sc.Goroutine())
	}
	return out, sc.Malformed(), sc.Err()
}

// syntheticDump builds a dump with clusters goroutine groups of size each,
// one distinct blocked location per cluster, plus varied singletons —
// the shape of a leaked production profile.
func syntheticDump(clusters, size int) string {
	var gs []*Goroutine
	id := int64(1)
	for c := 0; c < clusters; c++ {
		for i := 0; i < size; i++ {
			gs = append(gs, &Goroutine{
				ID:       id,
				State:    "chan send",
				WaitTime: time.Duration(c+1) * time.Minute,
				Frames: []Frame{
					{Function: "runtime.gopark", File: "/go/src/runtime/proc.go", Line: 382, Offset: 0xc6},
					{Function: fmt.Sprintf("svc%d.leak", c), File: fmt.Sprintf("/svc%d/l.go", c), Line: 5 + c, Offset: 0x2b},
				},
				CreatedBy: Frame{Function: fmt.Sprintf("svc%d.spawn", c), File: fmt.Sprintf("/svc%d/l.go", c), Line: 1 + c},
				CreatorID: 1,
			})
			id++
		}
	}
	for i := 0; i < 50; i++ {
		gs = append(gs, &Goroutine{
			ID: id, State: "IO wait",
			Frames: []Frame{{Function: fmt.Sprintf("net.poll%d", i), File: "/net/fd.go", Line: 100 + i}},
		})
		id++
	}
	return Format(gs)
}

// goldenDumps are the inputs every parser change must hold its behaviour
// on: the documented sample, preamble and malformed-header tolerance,
// frames without locations, runtime-frame stacks, and a large clustered
// dump.
func goldenDumps() map[string]string {
	return map[string]string{
		"sample":   sampleDump,
		"empty":    "",
		"preamble": "goroutine profile: total 3\n\ngoroutine 7 [running]:\nmain.main()\n\t/a/b.go:1 +0x1\n",
		"malformed-headers": "goroutine x [running]:\ngoroutine 5\ngoroutine 5 running:\n" +
			"goroutine profile: total 99\n",
		"frame-no-location": "goroutine 3 [select]:\nsome.pkg.fn()\nother.pkg.fn2()\n\t/x/y.go:9\n",
		"runtime-frames": "goroutine 9 [chan send]:\nruntime.gopark()\n\t/go/src/runtime/proc.go:382 +0xc6\n" +
			"runtime.chansend()\n\t/go/src/runtime/chan.go:259 +0x42e\nmain.sender()\n\t/src/app/send.go:8 +0x2e\n",
		"no-trailing-newline": "goroutine 4 [running]:\nmain.main()\n\t/a.go:1 +0x1",
		"crlf":                "goroutine 6 [chan receive]:\r\nmain.recv()\r\n\t/a.go:2 +0x3\r\n",
		"missing-brackets":    "goroutine 8 [chan send:\nmain.f()\n",
		"locked":              "goroutine 2 [select, 3 hours, locked to thread, wedged]:\nmain.w()\n\t/w.go:4 +0x9\n",
		"clustered":           syntheticDump(3, 40),
	}
}

func TestScannerParityOnGoldenDumps(t *testing.T) {
	for name, dump := range goldenDumps() {
		t.Run(name, func(t *testing.T) {
			assertScannerBehaviour(t, dump)
		})
	}
}

// TestScannerParityOnMutatedDumps is the fuzz-shaped property test:
// truncations, garbage line injections, and byte flips of a valid dump
// must never make the scanner diverge from the legacy parser or panic.
func TestScannerParityOnMutatedDumps(t *testing.T) {
	base := syntheticDump(4, 10)
	garbage := []string{
		"!!garbage!!",
		"goroutine 99999999999999999999999999 [running]:",
		"goroutine -3 [chan send]:",
		"\t/orphaned/location.go:7 +0x1",
		"created by lone.creator in goroutine 2",
		"no parens here",
		"fn.with.args(0x1, 0x2)",
		"goroutine 12 [chan send",
		"   leading spaces()",
		"goroutine 13 [zz, 7 minutes]:",
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		m := base
		switch i % 3 {
		case 0: // truncate at a random byte
			m = base[:rng.Intn(len(base)+1)]
		case 1: // splice garbage lines at random line boundaries
			lines := strings.Split(base, "\n")
			for j := 0; j < 3; j++ {
				at := rng.Intn(len(lines) + 1)
				lines = append(lines[:at], append([]string{garbage[rng.Intn(len(garbage))]}, lines[at:]...)...)
			}
			m = strings.Join(lines, "\n")
		case 2: // flip random bytes
			b := []byte(base)
			for j := 0; j < 5; j++ {
				b[rng.Intn(len(b))] = byte(rng.Intn(256))
			}
			m = string(b)
		}
		if msg := checkScannerBehaviour(m); msg != "" {
			t.Fatalf("divergence on mutation %d:\ninput:\n%q\n%s", i, m, msg)
		}
	}
}

// TestScannerAllocsBelowParse pins the acceptance criterion: streaming a
// >=10K-goroutine dump must allocate strictly less than the
// materialise-then-parse baseline.
func TestScannerAllocsBelowParse(t *testing.T) {
	dump := syntheticDump(4, 2500) // 10050 goroutines
	var n int
	scanAllocs := testing.AllocsPerRun(3, func() {
		sc := NewScanner(strings.NewReader(dump))
		n = 0
		for sc.Scan() {
			n++
		}
		if sc.Err() != nil {
			t.Fatal(sc.Err())
		}
	})
	if n != 10050 {
		t.Fatalf("scanned %d goroutines, want 10050", n)
	}
	parseAllocs := testing.AllocsPerRun(3, func() {
		gs, err := parseLegacy(dump)
		if err != nil || len(gs) != 10050 {
			t.Fatalf("parse: %v (%d)", err, len(gs))
		}
	})
	if scanAllocs >= parseAllocs {
		t.Errorf("scanner allocs/op = %.0f, want strictly below legacy parse %.0f", scanAllocs, parseAllocs)
	}
	t.Logf("allocs/op: scanner %.0f vs legacy parse %.0f", scanAllocs, parseAllocs)
}

// TestScannerInternsAcrossCluster verifies the leaked-cluster economy:
// the same function name yields the same string header across records.
func TestScannerInternsAcrossCluster(t *testing.T) {
	dump := syntheticDump(1, 3)
	gs, err := scanAll(dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) < 2 {
		t.Fatalf("got %d goroutines", len(gs))
	}
	a, b := gs[0].Frames[1].Function, gs[1].Frames[1].Function
	if a != b {
		t.Fatalf("cluster functions differ: %q vs %q", a, b)
	}
	// Interned strings share storage: identical string headers.
	if unsafeStringData(a) != unsafeStringData(b) {
		t.Error("identical function names were not interned to one allocation")
	}
}

func unsafeStringData(s string) *byte {
	return unsafe.StringData(s)
}

func TestScannerYieldsIncrementally(t *testing.T) {
	// A reader that fails after the first goroutine block proves the
	// scanner yields records before the input is fully consumed.
	head := "goroutine 1 [running]:\nmain.main()\n\t/a.go:1 +0x1\n\n"
	r := &failAfter{data: []byte(head)}
	sc := NewScanner(r)
	if !sc.Scan() {
		t.Fatalf("no goroutine before reader failure: %v", sc.Err())
	}
	if sc.Goroutine().ID != 1 {
		t.Errorf("goroutine = %+v", sc.Goroutine())
	}
	if sc.Scan() {
		t.Error("Scan succeeded past reader failure")
	}
	if sc.Err() == nil {
		t.Error("reader failure not surfaced via Err")
	}
}

type failAfter struct {
	data []byte
	off  int
}

func (f *failAfter) Read(p []byte) (int, error) {
	if f.off >= len(f.data) {
		return 0, fmt.Errorf("synthetic read failure")
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

// assertScannerBehaviour pins the scanner's contract relative to the
// frozen legacy parser: on inputs the legacy parser accepts cleanly, the
// scanner must produce identical records with no resyncs; on inputs the
// legacy parser rejects (a malformed goroutine header — its only content
// error), the scanner must not error but instead resync, counting at
// least one malformed member. Where the legacy parser accepts but the
// scanner counts a salvage (orphaned frame pairs after a torn blank
// line), member identity must agree and no member may lose frames.
// Either way, arbitrary string input must never surface a scanner
// error: Err is reserved for reader failures.
func assertScannerBehaviour(t *testing.T, dump string) {
	t.Helper()
	if msg := checkScannerBehaviour(dump); msg != "" {
		t.Fatal(msg)
	}
}

func checkScannerBehaviour(dump string) string {
	want, wantErr := parseLegacy(dump)
	got, malformed, gotErr := scanAllCounting(dump)
	if gotErr != nil {
		return fmt.Sprintf("scanner errored on in-memory input: %v", gotErr)
	}
	if wantErr != nil {
		if malformed == 0 {
			return fmt.Sprintf("legacy rejected the dump (%v) but scanner resynced %d times (want >= 1)", wantErr, malformed)
		}
		return ""
	}
	if malformed != 0 {
		// Frame-level salvage: the dump carried frame-pair content where
		// a header should be (a torn frame line inside a member). The
		// legacy parser silently drops those orphaned frames; the scanner
		// reattaches them and counts the tear. Member identity must still
		// agree exactly — salvage may only enrich a member's frames,
		// never invent or lose members.
		if len(want) != len(got) {
			return fmt.Sprintf("salvaging scanner yielded %d goroutines, legacy %d", len(got), len(want))
		}
		for i := range want {
			if want[i].ID != got[i].ID || want[i].State != got[i].State {
				return fmt.Sprintf("salvaged record %d identity differs:\nlegacy:  %+v\nscanner: %+v", i, want[i], got[i])
			}
			if len(got[i].Frames) < len(want[i].Frames) {
				return fmt.Sprintf("salvaged record %d lost frames:\nlegacy:  %+v\nscanner: %+v", i, want[i], got[i])
			}
		}
		return ""
	}
	if len(want) != len(got) {
		return fmt.Sprintf("legacy: %d goroutines, scanner: %d\nlegacy: %+v\nscanner: %+v",
			len(want), len(got), dumpRecords(want), dumpRecords(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			return fmt.Sprintf("record %d differs:\nlegacy:  %+v\nscanner: %+v", i, want[i], got[i])
		}
	}
	return ""
}

func dumpRecords(gs []*Goroutine) []string {
	out := make([]string, 0, len(gs))
	for _, g := range gs {
		out = append(out, g.String())
	}
	return out
}
