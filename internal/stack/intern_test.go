package stack

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

// poolDump renders n goroutines blocked at the same location, the shape a
// leaked cluster repeats across every instance of a service.
func poolDump(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "goroutine %d [chan send, 5 minutes]:\nsvc.leak(0x1)\n\t/src/svc/handler.go:42 +0x2b\ncreated by svc.serve in goroutine 1\n\t/src/svc/main.go:10 +0x8\n\n", i+1)
	}
	return b.String()
}

func drainScanner(t *testing.T, sc *Scanner) []*Goroutine {
	t.Helper()
	var out []*Goroutine
	for sc.Scan() {
		out = append(out, sc.Goroutine())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInternPoolSharesAcrossScanners(t *testing.T) {
	dump := poolDump(3)
	plain := drainScanner(t, NewScanner(strings.NewReader(dump)))

	pool := NewInternPool(0)
	var pooled [][]*Goroutine
	for i := 0; i < 2; i++ {
		sc := NewScanner(strings.NewReader(dump))
		sc.SetInternPool(pool)
		pooled = append(pooled, drainScanner(t, sc))
	}
	for i, gs := range pooled {
		if !reflect.DeepEqual(gs, plain) {
			t.Fatalf("pooled scan %d diverged from plain scan", i)
		}
	}
	// The two scans share one physical copy of the function string.
	a := pooled[0][0].Frames[0].Function
	b := pooled[1][0].Frames[0].Function
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Error("function strings not shared across pooled scanners")
	}
	if n := pool.Len(); n == 0 {
		t.Error("pool stayed empty")
	}
}

func TestInternPoolBounded(t *testing.T) {
	pool := NewInternPool(2)
	for i := 0; i < 10; i++ {
		pool.internString(fmt.Sprintf("fn%d", i))
	}
	if n := pool.Len(); n != 2 {
		t.Fatalf("pool grew to %d entries, bound is 2", n)
	}
	// A full pool still interns correctly, just privately.
	if got := pool.internString("fn9"); got != "fn9" {
		t.Fatalf("full pool returned %q", got)
	}
}

func TestInternPoolConcurrent(t *testing.T) {
	dump := poolDump(50)
	pool := NewInternPool(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := NewScanner(strings.NewReader(dump))
			sc.SetInternPool(pool)
			n := 0
			for sc.Scan() {
				n++
			}
			if sc.Err() != nil || n != 50 {
				t.Errorf("concurrent pooled scan: n=%d err=%v", n, sc.Err())
			}
		}()
	}
	wg.Wait()
}
