package stack

import (
	"sync"
	"testing"
)

// TestCaptureBufferReuse: repeated captures — goleak's retry loop — go
// through the pool, and a grown buffer keeps its growth when returned,
// so later captures skip the doubling walk. (sync.Pool gives no
// retention guarantee, so the test checks the pooled lifecycle, not
// object identity.)
func TestCaptureBufferReuse(t *testing.T) {
	buf, n := dumpAll()
	if n <= 0 || n >= len(*buf) {
		t.Fatalf("dump = %d bytes into a %d-byte buffer", n, len(*buf))
	}
	grown := len(*buf)
	captureBufPool.Put(buf)
	if got := captureBufPool.Get().(*[]byte); got == buf {
		// The common path: the very buffer we returned comes back, with
		// its growth intact.
		if len(*got) != grown {
			t.Errorf("pooled buffer resized: %d -> %d", grown, len(*got))
		}
		captureBufPool.Put(got)
	} else {
		captureBufPool.Put(got)
	}
	// And the capture entry points keep working across repeated calls.
	for i := 0; i < 3; i++ {
		if _, err := Current(); err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkCurrent measures the goleak capture primitive — the path the
// testmain retry schedule hits up to ~20 times per verification. The
// capture buffer is scanned in place (no whole-dump string copy), so
// allocs/op should track the goroutine population, not the dump bytes.
// The crowded case parks a block of goroutines so the dump carries a
// realistic population instead of just the test harness.
func BenchmarkCurrent(b *testing.B) {
	capture := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Current(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("quiet", capture)
	b.Run("crowded-256", func(b *testing.B) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 256; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-stop
			}()
		}
		defer func() {
			close(stop)
			wg.Wait()
		}()
		capture(b)
	})
}
