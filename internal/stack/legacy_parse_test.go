package stack

import (
	"fmt"
	"strconv"
	"strings"
)

// This file preserves the original batch parser verbatim (modulo the
// shared parseStateAnnotations helper) as the reference implementation
// the streaming Scanner is checked against: the parity and property tests
// assert the two produce identical records and identical errors on every
// input, and the allocation test asserts the scanner stays strictly
// cheaper.

// parseLegacy is the pre-streaming Parse: split the whole dump into
// lines, walk them with one-line lookahead for frame locations.
func parseLegacy(dump string) ([]*Goroutine, error) {
	lines := strings.Split(dump, "\n")
	var (
		out []*Goroutine
		cur *Goroutine
		i   int
	)
	flush := func() {
		if cur != nil {
			out = append(out, cur)
			cur = nil
		}
	}
	for i < len(lines) {
		line := strings.TrimRight(lines[i], "\r")
		switch {
		case strings.HasPrefix(line, "goroutine ") && isHeaderLegacy(line):
			flush()
			g, err := parseHeaderLegacy(line)
			if err != nil {
				return nil, fmt.Errorf("stack: line %d: %w", i+1, err)
			}
			cur = g
			i++
		case line == "":
			flush()
			i++
		case cur == nil:
			i++
		case strings.HasPrefix(line, "created by "):
			frame, creator, consumed := parseCreatedByLegacy(lines, i)
			cur.CreatedBy = frame
			cur.CreatorID = creator
			i += consumed
		default:
			frame, consumed, ok := parseFrameLegacy(lines, i)
			if ok {
				cur.Frames = append(cur.Frames, frame)
			}
			i += consumed
		}
	}
	flush()
	return out, nil
}

func isHeaderLegacy(line string) bool {
	rest := strings.TrimPrefix(line, "goroutine ")
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		return false
	}
	if _, err := strconv.ParseInt(rest[:sp], 10, 64); err != nil {
		return false
	}
	return strings.Contains(rest[sp:], "[")
}

func parseHeaderLegacy(line string) (*Goroutine, error) {
	rest := strings.TrimPrefix(line, "goroutine ")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, fmt.Errorf("malformed goroutine header %q", line)
	}
	id, err := strconv.ParseInt(rest[:sp], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("malformed goroutine id in %q: %w", line, err)
	}
	rest = rest[sp+1:]
	open := strings.IndexByte(rest, '[')
	close := strings.LastIndexByte(rest, ']')
	if open < 0 || close < open {
		return nil, fmt.Errorf("missing state brackets in %q", line)
	}
	g := &Goroutine{ID: id}
	g.State, g.WaitTime, g.Locked, g.Count = parseStateAnnotations(rest[open+1 : close])
	return g, nil
}

func parseFrameLegacy(lines []string, i int) (Frame, int, bool) {
	fn := strings.TrimRight(lines[i], "\r")
	p := strings.LastIndexByte(fn, '(')
	if p <= 0 {
		return Frame{}, 1, false
	}
	frame := Frame{Function: fn[:p]}
	if i+1 < len(lines) {
		loc := strings.TrimSpace(strings.TrimRight(lines[i+1], "\r"))
		if file, line, off, ok := parseLocationLegacy(loc); ok {
			frame.File, frame.Line, frame.Offset = file, line, off
			return frame, 2, true
		}
	}
	return frame, 1, true
}

func parseCreatedByLegacy(lines []string, i int) (Frame, int64, int) {
	rest := strings.TrimPrefix(strings.TrimRight(lines[i], "\r"), "created by ")
	var creator int64
	if j := strings.Index(rest, " in goroutine "); j >= 0 {
		id, err := strconv.ParseInt(rest[j+len(" in goroutine "):], 10, 64)
		if err == nil {
			creator = id
		}
		rest = rest[:j]
	}
	frame := Frame{Function: rest}
	consumed := 1
	if i+1 < len(lines) {
		loc := strings.TrimSpace(strings.TrimRight(lines[i+1], "\r"))
		if file, line, off, ok := parseLocationLegacy(loc); ok {
			frame.File, frame.Line, frame.Offset = file, line, off
			consumed = 2
		}
	}
	return frame, creator, consumed
}

func parseLocationLegacy(s string) (file string, line int, off uint64, ok bool) {
	if s == "" {
		return "", 0, 0, false
	}
	loc := s
	if sp := strings.IndexByte(s, ' '); sp >= 0 {
		loc = s[:sp]
		offStr := strings.TrimSpace(s[sp+1:])
		if strings.HasPrefix(offStr, "+0x") {
			v, err := strconv.ParseUint(offStr[3:], 16, 64)
			if err == nil {
				off = v
			}
		}
	}
	colon := strings.LastIndexByte(loc, ':')
	if colon <= 0 {
		return "", 0, 0, false
	}
	n, err := strconv.Atoi(loc[colon+1:])
	if err != nil {
		return "", 0, 0, false
	}
	if !strings.HasSuffix(loc[:colon], ".go") && !strings.Contains(loc[:colon], "/") {
		return "", 0, 0, false
	}
	return loc[:colon], n, off, true
}
