// Package report implements the reporting tail of the LEAKPROF pipeline
// (Fig 3 of the paper): deduplication of findings against a bug database,
// code-ownership routing, and rendering of the alert payload that reaches
// service owners.
package report

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Status tracks the lifecycle of a filed defect; the paper reports 33
// filed, 24 acknowledged, 21 fixed over one year.
type Status int

const (
	// StatusFiled is a newly created report.
	StatusFiled Status = iota
	// StatusAcknowledged means the owners confirmed a real defect.
	StatusAcknowledged
	// StatusFixed means a fix was deployed.
	StatusFixed
	// StatusRejected means the owners triaged it as a false positive.
	StatusRejected
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusFiled:
		return "filed"
	case StatusAcknowledged:
		return "acknowledged"
	case StatusFixed:
		return "fixed"
	case StatusRejected:
		return "rejected"
	}
	return "unknown"
}

// Bug is one filed defect.
type Bug struct {
	// Key is the dedup key (service+operation+location).
	Key string
	// Service, Op, Location, Function describe the offending operation.
	Service  string
	Op       string
	Location string
	Function string
	// Owner is the routed code owner.
	Owner string
	// BlockedGoroutines is the fleet-wide count at filing time.
	BlockedGoroutines int
	// Impact is the ranking statistic at filing time.
	Impact float64
	// FiledAt is the filing timestamp.
	FiledAt time.Time
	// LastSeen is the timestamp of the most recent sweep that observed
	// the defect; it advances on every dedup re-sighting. Zero on bugs
	// restored from journals written before the field existed — age-out
	// falls back to FiledAt for those.
	LastSeen time.Time
	// Status is the current lifecycle state.
	Status Status
	// Sightings counts how many sweeps re-observed the defect.
	Sightings int
	// StaticAlarm is the static-analysis annotation for the bug's site,
	// when a findings index was linked at filing time: which detectors
	// flagged the location and why (e.g. "gcatch-like,goat-like: send on
	// chan with no reachable receiver"). Empty when no static index was
	// consulted or no detector flagged the site.
	StaticAlarm string `json:",omitempty"`
}

// closed reports whether the bug's lifecycle is over: fixed or triaged
// away. Only closed bugs are age-out candidates — an open bug must keep
// deduplicating forever, however old.
func (b *Bug) closed() bool {
	return b.Status == StatusFixed || b.Status == StatusRejected
}

// DB is an in-memory bug database with dedup semantics: filing an already
// known key updates the sighting count instead of creating a duplicate.
// It is safe for concurrent use.
//
// The database tracks which bugs changed since the last TakeDirty call —
// new filings, re-sightings, status transitions — so an incremental
// journal can persist exactly the sweep's delta instead of re-writing
// every bug ever filed.
type DB struct {
	mu    sync.Mutex
	bugs  map[string]*Bug
	dirty map[string]struct{}
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{bugs: make(map[string]*Bug), dirty: make(map[string]struct{})}
}

// File records a defect. It returns the stored bug and whether it was
// newly created (false means the finding deduplicated onto an existing
// report, whose counters are refreshed). Either way the key is marked
// dirty: a re-sighting changes counters the journal must capture.
func (db *DB) File(b Bug) (*Bug, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.dirty[b.Key] = struct{}{}
	seen := b.LastSeen
	if seen.IsZero() {
		seen = b.FiledAt
	}
	if existing, ok := db.bugs[b.Key]; ok {
		existing.Sightings++
		if b.BlockedGoroutines > existing.BlockedGoroutines {
			existing.BlockedGoroutines = b.BlockedGoroutines
		}
		if b.Impact > existing.Impact {
			existing.Impact = b.Impact
		}
		if seen.After(existing.LastSeen) {
			existing.LastSeen = seen
		}
		if b.StaticAlarm != "" {
			// A re-sighting filed with a fresher static index wins: the
			// annotation tracks the current scan, not the first one.
			existing.StaticAlarm = b.StaticAlarm
		}
		return existing, false
	}
	stored := b
	stored.Sightings = 1
	stored.LastSeen = seen
	db.bugs[b.Key] = &stored
	return &stored, true
}

// Restore loads previously filed bugs — a persisted journal read back at
// startup — preserving their status, sighting counts, and filing times,
// so dedup survives a process restart. Restored keys overwrite any
// in-memory entry; filing the same key later deduplicates as usual.
// Restored bugs are not marked dirty: they came from the journal, so
// journalling them again would be redundant.
func (db *DB) Restore(bugs []Bug) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, b := range bugs {
		stored := b
		if stored.Sightings == 0 {
			stored.Sightings = 1
		}
		db.bugs[stored.Key] = &stored
	}
}

// SetStatus transitions a bug's lifecycle state and marks the key dirty.
func (db *DB) SetStatus(key string, s Status) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	b, ok := db.bugs[key]
	if !ok {
		return false
	}
	b.Status = s
	db.dirty[key] = struct{}{}
	return true
}

// TakeDirty returns copies of every bug changed since the last TakeDirty
// (or since the database was created) sorted by key, and clears the dirty
// set. It is the delta-export hook an append-only journal uses: the
// returned slice is exactly what one sweep changed, not the whole
// database. Keys marked dirty but since deleted are skipped.
func (db *DB) TakeDirty() []Bug {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.dirty) == 0 {
		return nil
	}
	out := make([]Bug, 0, len(db.dirty))
	for key := range db.dirty {
		if b, ok := db.bugs[key]; ok {
			out = append(out, *b)
		}
	}
	db.dirty = make(map[string]struct{})
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// DropAged removes closed (fixed or rejected) bugs whose last sighting —
// FiledAt when no sighting was ever recorded — predates cutoff, and
// returns how many were dropped. Open bugs are never dropped, whatever
// their age: dedup against a still-open report must survive until the
// owners resolve it. Dirty bugs are never dropped either — a closing
// status transition that has not been journaled yet must reach the
// journal first, or replay would resurrect the bug as open; it ages out
// on the pass after the delta carrying its final status is taken.
func (db *DB) DropAged(cutoff time.Time) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	dropped := 0
	for key, b := range db.bugs {
		if !b.closed() {
			continue
		}
		if _, pending := db.dirty[key]; pending {
			continue
		}
		seen := b.LastSeen
		if seen.IsZero() {
			seen = b.FiledAt
		}
		if seen.Before(cutoff) {
			delete(db.bugs, key)
			dropped++
		}
	}
	return dropped
}

// MarkDirty re-marks keys for the next TakeDirty. It is the undo hook
// for a journal whose append failed after draining the dirty set: the
// delta was never persisted, so its keys must surface again.
func (db *DB) MarkDirty(keys ...string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, key := range keys {
		db.dirty[key] = struct{}{}
	}
}

// DirtyCount returns the number of keys changed since the last TakeDirty.
func (db *DB) DirtyCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.dirty)
}

// Get returns a copy of the bug for key.
func (db *DB) Get(key string) (Bug, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	b, ok := db.bugs[key]
	if !ok {
		return Bug{}, false
	}
	return *b, true
}

// All returns copies of all bugs sorted by filing time then key.
func (db *DB) All() []Bug {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]Bug, 0, len(db.bugs))
	for _, b := range db.bugs {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FiledAt.Equal(out[j].FiledAt) {
			return out[i].FiledAt.Before(out[j].FiledAt)
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// exportChunk bounds how many bugs SnapshotKeys copies per lock
// acquisition: large enough that chunking costs nothing, small enough
// that a concurrent File or SetStatus never waits on a 100K-key copy.
const exportChunk = 1024

// Keys returns every filed bug's key, unordered. With SnapshotKeys it
// forms the incremental-export pair a journal's concurrent fold uses:
// capture the cheap key set inside the caller's critical section, fetch
// the bug values later in bounded chunks off it.
func (db *DB) Keys() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.bugs))
	for k := range db.bugs {
		out = append(out, k)
	}
	return out
}

// SnapshotKeys returns copies of the bugs for keys, skipping keys that
// no longer exist, taking the lock once per bounded chunk so concurrent
// mutators never wait on a full-DB copy. A bug mutated between chunks
// is returned in whichever state the fetch observes; callers that need
// a consistent journal image rely on the mutation also being journaled
// after their snapshot (dirty bugs ride the next delta frame).
func (db *DB) SnapshotKeys(keys []string) []Bug {
	out := make([]Bug, 0, len(keys))
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > exportChunk {
			chunk = chunk[:exportChunk]
		}
		keys = keys[len(chunk):]
		db.mu.Lock()
		for _, k := range chunk {
			if b, ok := db.bugs[k]; ok {
				out = append(out, *b)
			}
		}
		db.mu.Unlock()
	}
	return out
}

// CountByStatus tallies bugs per lifecycle state (the §VII headline
// numbers).
func (db *DB) CountByStatus() map[Status]int {
	db.mu.Lock()
	defer db.mu.Unlock()
	m := make(map[Status]int)
	for _, b := range db.bugs {
		m[b.Status]++
	}
	return m
}

// Ownership maps source paths to owning teams, the way a CODEOWNERS file
// does: the longest registered path prefix wins.
type Ownership struct {
	mu       sync.RWMutex
	prefixes map[string]string
}

// NewOwnership builds an ownership map from prefix→owner pairs.
func NewOwnership(prefixes map[string]string) *Ownership {
	o := &Ownership{prefixes: make(map[string]string, len(prefixes))}
	for p, owner := range prefixes {
		o.prefixes[p] = owner
	}
	return o
}

// Register adds or replaces a prefix rule.
func (o *Ownership) Register(prefix, owner string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.prefixes == nil {
		o.prefixes = make(map[string]string)
	}
	o.prefixes[prefix] = owner
}

// OwnerOf resolves the owner for a source location ("path/file.go:12").
// The longest matching prefix wins; unmatched locations return "unowned".
func (o *Ownership) OwnerOf(location string) string {
	path := location
	if i := strings.LastIndexByte(path, ':'); i > 0 {
		path = path[:i]
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	best, bestLen := "unowned", -1
	for prefix, owner := range o.prefixes {
		if strings.HasPrefix(path, prefix) && len(prefix) > bestLen {
			best, bestLen = owner, len(prefix)
		}
	}
	return best
}

// Alert is the rendered payload sent to a code owner, carrying the fields
// Section V-A lists: the offending operation with source location and
// blocked-goroutine count, the representative profile, and the memory
// footprint.
type Alert struct {
	Bug Bug
	// RepresentativeInstance is the instance with the largest cluster.
	RepresentativeInstance string
	// RepresentativeCount is that instance's blocked count.
	RepresentativeCount int
	// MemoryFootprint describes the leak's memory trend, when available.
	MemoryFootprint string
}

// Render formats the alert as the multi-line report text.
func (a *Alert) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[leakprof] suspected goroutine leak in %s (owner: %s)\n", a.Bug.Service, a.Bug.Owner)
	fmt.Fprintf(&b, "  operation:      chan %s at %s (%s)\n", a.Bug.Op, a.Bug.Location, a.Bug.Function)
	fmt.Fprintf(&b, "  blocked:        %d goroutines fleet-wide (impact %.1f)\n", a.Bug.BlockedGoroutines, a.Bug.Impact)
	fmt.Fprintf(&b, "  representative: %s with %d blocked goroutines\n", a.RepresentativeInstance, a.RepresentativeCount)
	if a.MemoryFootprint != "" {
		fmt.Fprintf(&b, "  memory:         %s\n", a.MemoryFootprint)
	}
	if a.Bug.StaticAlarm != "" {
		fmt.Fprintf(&b, "  static:         %s\n", a.Bug.StaticAlarm)
	}
	fmt.Fprintf(&b, "  status:         %s (sightings: %d)\n", a.Bug.Status, a.Bug.Sightings)
	return b.String()
}
