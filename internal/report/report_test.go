package report

import (
	"sync"
	"testing"
	"time"
)

func TestDBFileAndDedup(t *testing.T) {
	db := NewDB()
	b1, isNew := db.File(Bug{Key: "k1", Service: "s", BlockedGoroutines: 100, Impact: 10})
	if !isNew || b1.Sightings != 1 {
		t.Fatalf("first file: new=%v sightings=%d", isNew, b1.Sightings)
	}
	b2, isNew := db.File(Bug{Key: "k1", BlockedGoroutines: 500, Impact: 5})
	if isNew {
		t.Fatal("dedup failed")
	}
	if b2.Sightings != 2 {
		t.Errorf("sightings = %d", b2.Sightings)
	}
	if b2.BlockedGoroutines != 500 {
		t.Errorf("blocked count should track the max: %d", b2.BlockedGoroutines)
	}
	if b2.Impact != 10 {
		t.Errorf("impact should track the max: %f", b2.Impact)
	}
}

func TestDBStatusLifecycle(t *testing.T) {
	db := NewDB()
	db.File(Bug{Key: "a"})
	db.File(Bug{Key: "b"})
	db.File(Bug{Key: "c"})
	if !db.SetStatus("a", StatusAcknowledged) {
		t.Fatal("SetStatus on existing key failed")
	}
	db.SetStatus("a", StatusFixed)
	db.SetStatus("b", StatusRejected)
	if db.SetStatus("zzz", StatusFixed) {
		t.Error("SetStatus on missing key succeeded")
	}
	counts := db.CountByStatus()
	if counts[StatusFixed] != 1 || counts[StatusRejected] != 1 || counts[StatusFiled] != 1 {
		t.Errorf("counts = %v", counts)
	}
	bug, ok := db.Get("a")
	if !ok || bug.Status != StatusFixed {
		t.Errorf("get(a) = %+v, %v", bug, ok)
	}
}

func TestDBAllSorted(t *testing.T) {
	db := NewDB()
	t0 := time.Unix(100, 0)
	db.File(Bug{Key: "later", FiledAt: t0.Add(time.Hour)})
	db.File(Bug{Key: "earlier", FiledAt: t0})
	db.File(Bug{Key: "also-early", FiledAt: t0})
	all := db.All()
	if len(all) != 3 {
		t.Fatalf("len = %d", len(all))
	}
	if all[0].Key != "also-early" || all[1].Key != "earlier" || all[2].Key != "later" {
		t.Errorf("order = %s, %s, %s", all[0].Key, all[1].Key, all[2].Key)
	}
}

func TestDBConcurrentUse(t *testing.T) {
	db := NewDB()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				db.File(Bug{Key: "shared"})
				db.SetStatus("shared", StatusAcknowledged)
				db.Get("shared")
				db.All()
				db.CountByStatus()
			}
		}()
	}
	wg.Wait()
	bug, _ := db.Get("shared")
	if bug.Sightings != 1600 {
		t.Errorf("sightings = %d, want 1600", bug.Sightings)
	}
}

func TestOwnershipLongestPrefix(t *testing.T) {
	o := NewOwnership(map[string]string{
		"/repo/":          "root-team",
		"/repo/pay/":      "pay-team",
		"/repo/pay/risk/": "risk-team",
	})
	cases := map[string]string{
		"/repo/pay/risk/eval.go:10": "risk-team",
		"/repo/pay/ledger.go:5":     "pay-team",
		"/repo/infra/log.go:1":      "root-team",
		"/elsewhere/x.go:1":         "unowned",
	}
	for loc, want := range cases {
		if got := o.OwnerOf(loc); got != want {
			t.Errorf("OwnerOf(%q) = %q, want %q", loc, got, want)
		}
	}
	o.Register("/elsewhere/", "new-team")
	if got := o.OwnerOf("/elsewhere/x.go:1"); got != "new-team" {
		t.Errorf("after Register: %q", got)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusFiled: "filed", StatusAcknowledged: "acknowledged",
		StatusFixed: "fixed", StatusRejected: "rejected", Status(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d) = %q, want %q", s, got, want)
		}
	}
}

// TestDBTakeDirty pins the delta-export contract the append-only state
// journal relies on: filings, re-sightings, and status transitions mark
// keys dirty; restores do not; and TakeDirty drains exactly the changed
// set.
func TestDBTakeDirty(t *testing.T) {
	db := NewDB()
	if got := db.TakeDirty(); got != nil {
		t.Fatalf("fresh DB dirty set = %+v, want nil", got)
	}

	db.File(Bug{Key: "a", Service: "s"})
	db.File(Bug{Key: "b", Service: "s"})
	dirty := db.TakeDirty()
	if len(dirty) != 2 || dirty[0].Key != "a" || dirty[1].Key != "b" {
		t.Fatalf("dirty after filings = %+v, want [a b]", dirty)
	}
	if db.DirtyCount() != 0 {
		t.Fatalf("TakeDirty did not drain: %d keys still dirty", db.DirtyCount())
	}

	// A re-sighting changes counters the journal must capture: dirty
	// again, carrying the updated record.
	db.File(Bug{Key: "a", Service: "s"})
	dirty = db.TakeDirty()
	if len(dirty) != 1 || dirty[0].Key != "a" || dirty[0].Sightings != 2 {
		t.Fatalf("dirty after re-sighting = %+v, want [a with 2 sightings]", dirty)
	}

	// Status transitions are journal-worthy too.
	if !db.SetStatus("b", StatusFixed) {
		t.Fatal("SetStatus failed")
	}
	dirty = db.TakeDirty()
	if len(dirty) != 1 || dirty[0].Key != "b" || dirty[0].Status != StatusFixed {
		t.Fatalf("dirty after SetStatus = %+v", dirty)
	}

	// Restored bugs came from the journal; re-journalling them would be
	// redundant.
	db.Restore([]Bug{{Key: "c", Sightings: 5}})
	if got := db.TakeDirty(); got != nil {
		t.Fatalf("dirty after Restore = %+v, want nil", got)
	}
	if _, ok := db.Get("c"); !ok {
		t.Fatal("restored bug missing")
	}
}

func TestDBDropAged(t *testing.T) {
	day := func(n int) time.Time { return time.Unix(0, 0).Add(time.Duration(n) * 24 * time.Hour) }
	db := NewDB()
	db.File(Bug{Key: "open-old", FiledAt: day(1)})
	db.File(Bug{Key: "fixed-old", FiledAt: day(1)})
	db.SetStatus("fixed-old", StatusFixed)
	db.File(Bug{Key: "rejected-old", FiledAt: day(1)})
	db.SetStatus("rejected-old", StatusRejected)
	db.File(Bug{Key: "fixed-fresh", FiledAt: day(1)})
	db.SetStatus("fixed-fresh", StatusFixed)
	// A re-sighting advances LastSeen: the fresh fixed bug was seen again
	// on day 9, so a day-5 cutoff keeps it.
	db.File(Bug{Key: "fixed-fresh", FiledAt: day(9)})

	// Every change above is still dirty — un-journaled state must never
	// age out, or a replay would resurrect the bug as open.
	if got := db.DropAged(day(5)); got != 0 {
		t.Fatalf("DropAged dropped %d dirty bugs, want 0 until they are journaled", got)
	}
	db.TakeDirty() // the journal drained the delta; aging may proceed

	if got := db.DropAged(day(5)); got != 2 {
		t.Fatalf("DropAged dropped %d bugs, want 2", got)
	}
	if _, ok := db.Get("open-old"); !ok {
		t.Error("open bug aged out; dedup for still-open bugs must be unaffected")
	}
	if _, ok := db.Get("fixed-fresh"); !ok {
		t.Error("recently re-sighted fixed bug aged out before its window")
	}
	for _, key := range []string{"fixed-old", "rejected-old"} {
		if _, ok := db.Get(key); ok {
			t.Errorf("closed bug %q survived age-out", key)
		}
	}
	// Nothing re-dirtied by aging: the journal has nothing new to carry.
	if dirty := db.TakeDirty(); len(dirty) != 0 {
		t.Errorf("dirty after age-out = %+v, want none", dirty)
	}

	// A bug restored from an old journal (no LastSeen recorded) ages by
	// FiledAt instead.
	db.Restore([]Bug{{Key: "legacy", FiledAt: day(1), Status: StatusFixed}})
	if got := db.DropAged(day(5)); got != 1 {
		t.Errorf("legacy bug without LastSeen did not age by FiledAt (dropped %d)", got)
	}
}
