package monorepo

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/patterns"
	"repro/internal/stack"
)

// Table IV of the paper classifies every goroutine still alive after
// running the complete 450K-test suite: 164K lingering goroutines, over
// 80% of them blocked on message passing, led by selects (51%) and
// channel receives (32%).
//
// CensusWeights carries the paper's row counts; the census scales them by
// a configurable factor, materialises the population through the pattern
// library's stack templates, and re-derives the classification through
// the real parser and classifier — so the pipeline (dump → parse →
// classify → tally) is exercised end to end rather than the numbers being
// echoed.

// CensusWeights maps each blocking kind to the paper's Table IV count.
func CensusWeights() map[stack.Kind]int {
	return map[stack.Kind]int{
		stack.KindChanReceive:    46000,
		stack.KindChanReceiveNil: 14,
		stack.KindChanSend:       2500,
		stack.KindChanSendNil:    5,
		stack.KindSelect:         75000,
		stack.KindSelectNoCases:  10,
		stack.KindIOWait:         9000,
		stack.KindSyscall:        6400,
		stack.KindSleep:          5500,
		stack.KindRunning:        407,
		stack.KindCondWait:       46,
		stack.KindSemacquire:     138,
	}
}

// kindPatterns maps channel kinds to a pattern producing that blocking
// kind; several patterns per kind are rotated to vary stack signatures.
func kindPatterns() map[stack.Kind][]*patterns.Pattern {
	return map[stack.Kind][]*patterns.Pattern{
		stack.KindChanReceive:    {patterns.UnclosedRange, patterns.TimerLoop},
		stack.KindChanReceiveNil: {patterns.NilReceive},
		stack.KindChanSend:       {patterns.PrematureReturn, patterns.TimeoutLeak, patterns.NCast, patterns.DoubleSend},
		stack.KindChanSendNil:    {patterns.NilSend},
		stack.KindSelect:         {patterns.ContractDone, patterns.ContractContext, patterns.ContractOutsideLoop, patterns.LoopNoEscape},
		stack.KindSelectNoCases:  {patterns.EmptySelect},
	}
}

// Census is the Table IV result derived from a synthesised population.
type Census struct {
	// Counts per classified kind.
	Counts map[stack.Kind]int
	// Total population size.
	Total int
}

// RunCensus synthesises the post-test-suite goroutine population at
// 1/scale of the paper's counts and classifies it through the real
// parse/classify pipeline.
func RunCensus(scale int, seed int64) (*Census, error) {
	if scale < 1 {
		scale = 1
	}
	r := rand.New(rand.NewSource(seed))
	kp := kindPatterns()
	var all []*stack.Goroutine
	nextID := int64(10)

	// Deterministic kind order for reproducible ID assignment.
	kinds := make([]stack.Kind, 0, len(CensusWeights()))
	for k := range CensusWeights() {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	for _, kind := range kinds {
		count := CensusWeights()[kind]
		n := count / scale
		if n == 0 && count > 0 {
			n = 1 // keep rare rows (nil channels, empty selects) visible
		}
		if pats := kp[kind]; pats != nil {
			for i := 0; i < n; i++ {
				p := pats[i%len(pats)]
				gs := p.Stacks(nextID, 1)
				// Spread locations so the census is not one giant
				// cluster.
				patterns.Relocate(gs, fmt.Sprintf("legacy/pkg%03d/code.go", r.Intn(400)), 10+r.Intn(200))
				all = append(all, gs...)
				nextID++
			}
			continue
		}
		// Non-channel kinds come from the benign templates.
		all = append(all, benignOfKind(r, kind, nextID, n)...)
		nextID += int64(n)
	}

	// Round-trip through the dump format: the census must survive
	// parsing exactly as profiles from real processes do.
	parsed, err := stack.Parse(stack.Format(all))
	if err != nil {
		return nil, fmt.Errorf("monorepo: census round trip: %w", err)
	}
	c := &Census{Counts: map[stack.Kind]int{}}
	for _, g := range parsed {
		c.Counts[g.Kind()]++
		c.Total++
	}
	return c, nil
}

// benignOfKind synthesises non-channel lingering goroutines of one kind.
func benignOfKind(r *rand.Rand, kind stack.Kind, firstID int64, n int) []*stack.Goroutine {
	state := map[stack.Kind]string{
		stack.KindIOWait:     "IO wait",
		stack.KindSyscall:    "syscall",
		stack.KindSleep:      "sleep",
		stack.KindRunning:    "running",
		stack.KindCondWait:   "sync.Cond.Wait",
		stack.KindSemacquire: "semacquire",
	}[kind]
	if state == "" {
		state = "running"
	}
	out := make([]*stack.Goroutine, n)
	for i := range out {
		out[i] = &stack.Goroutine{
			ID:    firstID + int64(i),
			State: state,
			Frames: []stack.Frame{{
				Function: fmt.Sprintf("legacy/pkg%03d.background", r.Intn(400)),
				File:     fmt.Sprintf("legacy/pkg%03d/bg.go", r.Intn(400)),
				Line:     5 + r.Intn(100),
			}},
			CreatedBy: stack.Frame{Function: "legacy/boot.Start", File: "legacy/boot/start.go", Line: 9},
		}
	}
	return out
}

// MessagePassingShare returns the fraction of the census blocked on
// channel operations (the paper: over 80%).
func (c *Census) MessagePassingShare() float64 {
	if c.Total == 0 {
		return 0
	}
	mp := 0
	for k, n := range c.Counts {
		if k.ChannelOp() != "" {
			mp += n
		}
	}
	return float64(mp) / float64(c.Total)
}

// Format renders the census in the paper's Table IV layout.
func (c *Census) Format() string {
	var b strings.Builder
	b.WriteString("Type                              Count   Percentage\n")
	kinds := make([]stack.Kind, 0, len(c.Counts))
	for k := range c.Counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return c.Counts[kinds[i]] > c.Counts[kinds[j]] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-30s %8d %9.2f%%\n", k, c.Counts[k], 100*float64(c.Counts[k])/float64(c.Total))
	}
	fmt.Fprintf(&b, "%-30s %8d %9.2f%%\n", "Total", c.Total, 100.0)
	return b.String()
}
