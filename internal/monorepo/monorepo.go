// Package monorepo simulates the development-side deployment of GOLEAK
// described in Sections IV and VI of the paper: a monorepo receiving
// weekly batches of pull requests, some introducing goroutine leaks, with
// GOLEAK arriving in CI at a configurable week and a suppression list
// absorbing pre-existing defects.
//
// The simulation reproduces Fig 5 (weekly inflow of new leaks collapsing
// to near zero after the tool deploys), the suppression-list dynamics
// (1040 initial entries, modest growth from critical-PR exemptions), and
// the Table IV census of lingering goroutines after a full test-suite
// run.
//
// Detection is not stubbed: every introduced leak is materialised as a
// goroutine stack dump through the executable pattern library and pushed
// through the real goleak detection path (capture → filter → classify).
package monorepo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/goleak"
	"repro/internal/patterns"
	"repro/internal/stack"
)

// Config controls the repo-evolution simulation.
type Config struct {
	// Weeks is the simulated horizon (the paper plots 25).
	Weeks int
	// DeployWeek is when GOLEAK lands in CI (the paper: week 22).
	DeployWeek int
	// MeanLeaksPerWeek is the pre-deployment defect inflow (paper
	// median: 5/week).
	MeanLeaksPerWeek int
	// SpikeWeek and SpikeLeaks model the week-21 migration that brought
	// 47 leaks at once.
	SpikeWeek  int
	SpikeLeaks int
	// CriticalExemptionsPerWeek is how many blocked PRs per week are
	// allowed to merge by adding suppressions, for the first few weeks
	// after deployment (the paper saw one per week in weeks 22–24).
	CriticalExemptionsPerWeek int
	// ExemptionWeeks bounds how long exemptions continue after deploy.
	ExemptionWeeks int
	// InitialSuppressions seeds the suppression list (paper: 1040, of
	// which 857 were partial deadlocks).
	InitialSuppressions int
	// Seed drives the PRNG.
	Seed int64
}

// DefaultConfig mirrors the paper's deployment timeline.
func DefaultConfig() Config {
	return Config{
		Weeks:                     25,
		DeployWeek:                22,
		MeanLeaksPerWeek:          5,
		SpikeWeek:                 21,
		SpikeLeaks:                47,
		CriticalExemptionsPerWeek: 1,
		ExemptionWeeks:            3,
		InitialSuppressions:       1040,
		Seed:                      1,
	}
}

// WeekResult is one bar of Fig 5 plus CI bookkeeping.
type WeekResult struct {
	// Week is 1-based.
	Week int
	// Introduced is how many leaky PRs developers wrote this week.
	Introduced int
	// Detected is how many of those GOLEAK caught (0 before deploy:
	// the tool was not in CI, the count is known only retroactively).
	Detected int
	// Merged is how many leaks reached the main branch this week: all
	// of them before deployment, only suppressed exemptions after.
	Merged int
	// Blocked is how many PRs GOLEAK rejected.
	Blocked int
	// SuppressionSize is the list size at week end.
	SuppressionSize int
}

// Result is the full simulation outcome.
type Result struct {
	Weeks []WeekResult
	// RetroactiveDetected is the total leak inflow the retroactive
	// analysis attributes to the pre-deployment period.
	RetroactiveDetected int
	// PreventedEstimate extrapolates the pre-deployment weekly median
	// over a year, the paper's ≈260 figure.
	PreventedEstimate int
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	taxonomy := patterns.GoleakTaxonomy()
	suppressions := goleak.NewSuppressionList()
	for i := 0; i < cfg.InitialSuppressions; i++ {
		suppressions.Add(goleak.Suppression{
			Function: fmt.Sprintf("legacy/pkg%04d.leakyFn", i),
			Reason:   "pre-existing (offline trial run)",
		})
	}

	res := &Result{}
	var preWeekly []int
	for week := 1; week <= cfg.Weeks; week++ {
		introduced := poisson(r, float64(cfg.MeanLeaksPerWeek))
		if week == cfg.SpikeWeek {
			introduced = cfg.SpikeLeaks
		}
		wr := WeekResult{Week: week, Introduced: introduced}

		deployed := week >= cfg.DeployWeek
		exemptionsLeft := 0
		if deployed && week < cfg.DeployWeek+cfg.ExemptionWeeks {
			exemptionsLeft = cfg.CriticalExemptionsPerWeek
		}

		for i := 0; i < introduced; i++ {
			p := taxonomy.Sample(r)
			fn := fmt.Sprintf("w%02d/pr%03d.%s", week, i, p.Name)
			detected, err := detectInPR(p, fn)
			if err != nil {
				return nil, err
			}
			if !detected {
				// The dynamic tool missed it (should not happen for
				// channel leaks); it merges silently.
				wr.Merged++
				continue
			}
			if !deployed {
				// Pre-deployment: nothing gates the PR; the detection
				// is retroactive bookkeeping.
				wr.Detected++
				wr.Merged++
				res.RetroactiveDetected++
				continue
			}
			wr.Detected++
			if exemptionsLeft > 0 {
				exemptionsLeft--
				suppressions.Add(goleak.Suppression{Function: fn, Reason: "critical PR exemption"})
				wr.Merged++
				continue
			}
			wr.Blocked++
		}
		if !deployed {
			preWeekly = append(preWeekly, wr.Merged)
		}
		wr.SuppressionSize = suppressions.Len()
		res.Weeks = append(res.Weeks, wr)
	}
	res.PreventedEstimate = median(preWeekly) * 52
	return res, nil
}

// detectInPR materialises the leak a PR would introduce and pushes it
// through the real GOLEAK path: synthesise the pattern's goroutine
// records into a dump (relocated to the PR's code), parse, filter,
// classify.
func detectInPR(p *patterns.Pattern, fn string) (bool, error) {
	gs := p.Stacks(101, 3) // the unit test leaks a few goroutines
	patterns.Relocate(gs, fn+".go", 20)
	leaks, err := goleak.Find(goleak.WithDump(stack.Format(gs)), goleak.MaxRetries(0))
	if err != nil {
		return false, fmt.Errorf("monorepo: goleak on %s: %w", fn, err)
	}
	return len(leaks) > 0, nil
}

// poisson draws a Poisson variate via Knuth's method (fine for small
// means).
func poisson(r *rand.Rand, mean float64) int {
	threshold := math.Exp(-mean)
	l := 1.0
	for k := 0; ; k++ {
		l *= r.Float64()
		if l < threshold {
			return k
		}
	}
}

func median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
