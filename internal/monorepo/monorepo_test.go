package monorepo

import (
	"math"
	"testing"

	"repro/internal/stack"
)

func TestRunReproducesFig5Shape(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weeks) != cfg.Weeks {
		t.Fatalf("weeks = %d", len(res.Weeks))
	}

	var preMerged, postMerged, postBlocked int
	for _, w := range res.Weeks {
		if w.Week < cfg.DeployWeek {
			preMerged += w.Merged
			if w.Blocked != 0 {
				t.Errorf("week %d: blocked PRs before deployment", w.Week)
			}
		} else {
			postMerged += w.Merged
			postBlocked += w.Blocked
		}
	}
	// Pre-deployment inflow is substantial (median 5/week + spike 47).
	if preMerged < 60 {
		t.Errorf("pre-deployment merged leaks = %d, want > 60", preMerged)
	}
	// The spike week dominates.
	spike := res.Weeks[cfg.SpikeWeek-1]
	if spike.Introduced != cfg.SpikeLeaks || spike.Merged != cfg.SpikeLeaks {
		t.Errorf("spike week = %+v", spike)
	}
	// After deployment the inflow collapses to the exemption trickle
	// (≈1/week for three weeks).
	if postMerged > cfg.CriticalExemptionsPerWeek*cfg.ExemptionWeeks {
		t.Errorf("post-deployment merged = %d, want <= %d", postMerged,
			cfg.CriticalExemptionsPerWeek*cfg.ExemptionWeeks)
	}
	if postBlocked == 0 {
		t.Error("GOLEAK blocked nothing after deployment")
	}
	// The yearly prevention estimate lands near the paper's ≈260.
	if res.PreventedEstimate < 150 || res.PreventedEstimate > 400 {
		t.Errorf("prevented estimate = %d, want ~260", res.PreventedEstimate)
	}
}

func TestSuppressionListDynamics(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Weeks[0].SuppressionSize
	if first != cfg.InitialSuppressions {
		t.Errorf("initial suppressions = %d, want %d", first, cfg.InitialSuppressions)
	}
	last := res.Weeks[len(res.Weeks)-1].SuppressionSize
	growth := last - first
	maxGrowth := cfg.CriticalExemptionsPerWeek * cfg.ExemptionWeeks
	if growth < 1 || growth > maxGrowth {
		t.Errorf("suppression growth = %d, want 1..%d", growth, maxGrowth)
	}
}

func TestDetectionIsRealNotAssumed(t *testing.T) {
	// Every channel-blocking pattern the taxonomy samples must be
	// detected by the real goleak path; a regression in parsing,
	// filtering or classification shows up here.
	cfg := DefaultConfig()
	cfg.Weeks = 5
	cfg.DeployWeek = 1 // gate from the start
	cfg.CriticalExemptionsPerWeek = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Weeks {
		if w.Introduced != w.Detected {
			t.Errorf("week %d: introduced %d, detected %d", w.Week, w.Introduced, w.Detected)
		}
		if w.Merged != 0 {
			t.Errorf("week %d: %d leaks merged past the gate", w.Week, w.Merged)
		}
	}
	_ = res
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weeks {
		if a.Weeks[i] != b.Weeks[i] {
			t.Fatalf("week %d differs across equal-seed runs", i+1)
		}
	}
}

func TestCensusReproducesTableIV(t *testing.T) {
	c, err := RunCensus(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total < 14000 {
		t.Fatalf("census total = %d, want ~16.4K at scale 10", c.Total)
	}
	share := func(k stack.Kind) float64 {
		return float64(c.Counts[k]) / float64(c.Total)
	}
	// Paper: select 51%, receive 32%, send 1.73%, IO 6.4%.
	checks := []struct {
		kind stack.Kind
		want float64
		tol  float64
	}{
		{stack.KindSelect, 0.51, 0.05},
		{stack.KindChanReceive, 0.32, 0.05},
		{stack.KindChanSend, 0.0173, 0.01},
		{stack.KindIOWait, 0.064, 0.02},
		{stack.KindSyscall, 0.044, 0.02},
		{stack.KindSleep, 0.038, 0.02},
	}
	for _, chk := range checks {
		if got := share(chk.kind); math.Abs(got-chk.want) > chk.tol {
			t.Errorf("%v share = %.4f, want %.4f±%.3f", chk.kind, got, chk.want, chk.tol)
		}
	}
	// Rare-but-guaranteed leak rows stay visible.
	for _, k := range []stack.Kind{stack.KindChanSendNil, stack.KindChanReceiveNil, stack.KindSelectNoCases} {
		if c.Counts[k] == 0 {
			t.Errorf("%v missing from census", k)
		}
	}
	// Message passing dominates (paper: >80%).
	if mp := c.MessagePassingShare(); mp < 0.8 {
		t.Errorf("message-passing share = %.2f, want > 0.8", mp)
	}
	out := c.Format()
	if len(out) == 0 || c.Total == 0 {
		t.Error("empty census output")
	}
}

func TestCensusScaleOne(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale census")
	}
	c, err := RunCensus(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total < 1400 || c.Total > 1800 {
		t.Errorf("scale-100 census total = %d", c.Total)
	}
}
