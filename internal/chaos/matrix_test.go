package chaos

import (
	"context"
	"testing"
	"time"
)

// TestScenarioMatrix runs the full catalogue — every mode, every fault
// mix — and requires every scenario to clear its precision/recall
// floors, its latency SLO, and its expected-evidence checks. Every
// fault decision is seeded, so a failure here reproduces identically.
func TestScenarioMatrix(t *testing.T) {
	scs := Catalogue()
	if len(scs) < 8 {
		t.Fatalf("catalogue has %d scenarios, want at least 8", len(scs))
	}
	modes := map[Mode]bool{}
	names := map[string]bool{}
	for _, sc := range scs {
		if names[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		modes[sc.Mode] = true
	}
	for _, m := range []Mode{ModeBatch, ModeSharded, ModeIngest} {
		if !modes[m] {
			t.Errorf("catalogue covers no %s scenario", m)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	results := RunAll(ctx, scs)
	t.Logf("\n%s", RenderTable(results))
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s: %v", r.Scenario.Name, r.Reasons)
		}
	}
}

func TestLookup(t *testing.T) {
	got, err := Lookup([]string{"torn-dumps", "ingest-auth"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "torn-dumps" || got[1].Name != "ingest-auth" {
		t.Fatalf("Lookup returned %d scenarios in wrong order", len(got))
	}
	if _, err := Lookup([]string{"no-such-scenario"}); err == nil {
		t.Fatal("Lookup accepted an unknown scenario name")
	}
}
