package chaos

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/gprofile"
	"repro/internal/patterns"
	"repro/internal/stack"
	"repro/leakprof"
)

// TestIngestSalvageAccounting drives randomised body corruption through
// the full ingest path and checks the damage lands in the books: every
// POSTed body is independently mutilated (malformed headers, a
// truncation at a seeded mid-frame offset, or a corrupt gzip stream),
// and the test pre-computes — by scanning the exact mutated bytes
// directly — whether ingest must reject it at the door (400 +
// ScanErrors), fold it with a salvage failure in the closing window
// (202 + ErrSalvaged), or fold it clean. The window close must then
// report exactly the predicted accounting.
func TestIngestSalvageAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(42))

	renderBody := func(members int) []byte {
		var gs []*stack.Goroutine
		for i := 0; i < members; i++ {
			gs = append(gs, patterns.TimeoutLeak.Stacks(int64(1+i*10), 1)...)
		}
		return renderSnapshot(&gprofile.Snapshot{Goroutines: gs})
	}

	type post struct {
		ingestPost
		wantCode    int
		wantSalvage bool
	}
	var posts []post
	wantScanErr, wantSalvage := 0, 0
	for i := 0; i < 16; i++ {
		p := post{ingestPost: ingestPost{
			service:  "svc-a",
			instance: string(rune('a'+i)) + "-inst",
			body:     renderBody(4 + rng.Intn(5)),
		}}
		switch i % 4 {
		case 0: // clean
		case 1: // corrupt headers: scanner resyncs, window records salvage
			p.body, _ = MalformHeaders(p.body, 2)
		case 2: // torn mid-frame at a seeded offset
			cut := len(p.body)/4 + rng.Intn(len(p.body)/2)
			p.body = p.body[:cut]
		case 3: // corrupt gzip: inflation dies mid-body
			p.body, p.gz = CorruptGzip(gzipBody(p.body)), true
		}

		// Oracle: scan the exact bytes ingest will see. ScanSnapshot is
		// the same scanner the server runs at admission, so its verdict
		// predicts the HTTP code and the window accounting.
		switch {
		case p.gz:
			p.wantCode = http.StatusBadRequest
			wantScanErr++
		default:
			snap, err := gprofile.ScanSnapshot("svc-a", p.instance, time.Time{}, bytes.NewReader(p.body))
			switch {
			case err != nil:
				p.wantCode = http.StatusBadRequest
				wantScanErr++
			case snap.Malformed > 0:
				p.wantCode = http.StatusAccepted
				p.wantSalvage = true
				wantSalvage++
			default:
				p.wantCode = http.StatusAccepted
			}
		}
		posts = append(posts, p)
	}
	if wantSalvage == 0 {
		t.Fatal("seed produced no salvage cases; the test would assert nothing")
	}
	if wantScanErr == 0 {
		t.Fatal("seed produced no hard scan errors; the test would assert nothing")
	}

	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	ticks := make(chan time.Time, 1)
	sweeps := make(chan *leakprof.Sweep, 2)
	pipe := leakprof.New(
		leakprof.WithThreshold(1<<30), // accounting is under test, not detection
		leakprof.WithWindow(time.Minute),
		leakprof.WithClock(clock.Now),
		leakprof.WithOnSweep(func(s *leakprof.Sweep) { sweeps <- s }),
	)
	defer pipe.Close()
	srv := leakprof.NewIngestServer(pipe, leakprof.IngestTicks(ticks))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Run(ctx) }()
	defer func() { cancel(); <-done }()

	admitted := uint64(0)
	for _, p := range posts {
		code := postIngest(srv, p.ingestPost, "")
		if code != p.wantCode {
			t.Fatalf("%s: POST returned %d, want %d", p.instance, code, p.wantCode)
		}
		if code == http.StatusAccepted {
			admitted++
		}
	}
	if err := waitStats(srv, func(st leakprof.IngestStats) bool {
		return st.Folded == admitted
	}); err != nil {
		t.Fatal(err)
	}

	clock.Advance(time.Minute + time.Second)
	ticks <- time.Time{}
	var sweep *leakprof.Sweep
	select {
	case sweep = <-sweeps:
	case <-time.After(10 * time.Second):
		t.Fatal("window never closed")
	}

	gotSalvage, gotHard := 0, 0
	for _, f := range sweep.Failures {
		if errors.Is(f.Err, gprofile.ErrSalvaged) {
			gotSalvage++
		} else {
			gotHard++
		}
	}
	if gotSalvage != wantSalvage {
		t.Errorf("closing window recorded %d salvage failures, want %d", gotSalvage, wantSalvage)
	}
	if gotHard != wantScanErr {
		t.Errorf("closing window recorded %d hard failures, want %d", gotHard, wantScanErr)
	}
	if st := srv.Stats(); st.ScanErrors != uint64(wantScanErr) {
		t.Errorf("IngestStats.ScanErrors = %d, want %d", st.ScanErrors, wantScanErr)
	}
	// Salvage is a diagnostic, not downness: only hard scan errors may
	// seed the per-service failure accounting.
	if n := sweep.FailedByService["svc-a"]; n != wantScanErr {
		t.Errorf("FailedByService[svc-a] = %d, want %d", n, wantScanErr)
	}
}
