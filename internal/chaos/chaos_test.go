package chaos

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gprofile"
	"repro/internal/patterns"
	"repro/internal/stack"
)

func TestHash01Deterministic(t *testing.T) {
	a := Hash01(7, "torn", "svc-0003", 4)
	b := Hash01(7, "torn", "svc-0003", 4)
	if a != b {
		t.Fatalf("same inputs, different draws: %v vs %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Fatalf("draw %v outside [0, 1)", a)
	}
	// Each dimension must perturb the draw: seed, kind, key, attempt.
	for name, other := range map[string]float64{
		"seed":    Hash01(8, "torn", "svc-0003", 4),
		"kind":    Hash01(7, "slow", "svc-0003", 4),
		"key":     Hash01(7, "torn", "svc-0004", 4),
		"attempt": Hash01(7, "torn", "svc-0003", 5),
	} {
		if other == a {
			t.Errorf("changing %s did not change the draw", name)
		}
	}
}

func TestHash01Uniform(t *testing.T) {
	// Coarse sanity: the mean of many draws sits near 1/2.
	var sum float64
	const n = 4096
	for i := uint64(0); i < n; i++ {
		sum += Hash01(1, "u", "k", i)
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean of %d draws = %v, want ~0.5", n, mean)
	}
}

func TestTorn(t *testing.T) {
	body := []byte("0123456789")
	if got := Torn(body, 0.5); len(got) != 5 {
		t.Fatalf("Torn(10 bytes, 0.5) kept %d bytes, want 5", len(got))
	}
	if got := Torn(body, 0); got != nil {
		t.Fatalf("Torn(_, 0) = %q, want nil", got)
	}
	if got := Torn(body, 1); !bytes.Equal(got, body) {
		t.Fatalf("Torn(_, 1) mutated the body")
	}
	if got := Torn(body, 0.999); len(got) >= len(body) {
		t.Fatalf("Torn(_, 0.999) kept the whole body")
	}
}

func TestMalformHeadersScannerSalvage(t *testing.T) {
	// Render a six-member dump, corrupt every second header, and check
	// the scanner's salvage accounting sees exactly the mutated members.
	var gs []*stack.Goroutine
	for i := 0; i < 6; i++ {
		gs = append(gs, patterns.TimeoutLeak.Stacks(int64(1+i*10), 1)...)
	}
	snap := &gprofile.Snapshot{Service: "svc", Instance: "i-0", Goroutines: gs}
	body := renderSnapshot(snap)

	mutated, count := MalformHeaders(body, 2)
	if count != 3 {
		t.Fatalf("MalformHeaders corrupted %d members, want 3", count)
	}
	if !strings.Contains(string(mutated), "[chan") || bytes.Count(mutated, []byte("]:\n")) >= bytes.Count(body, []byte("]:\n")) {
		t.Fatalf("mutated body lacks the malformed-header shape:\n%s", mutated)
	}

	scanned, err := gprofile.ScanSnapshot("svc", "i-0", time.Time{}, bytes.NewReader(mutated))
	if err != nil {
		t.Fatalf("scan of malformed body hard-failed: %v", err)
	}
	if scanned.Malformed != count {
		t.Fatalf("scanner salvaged %d malformed members, want %d", scanned.Malformed, count)
	}
	if scanned.TotalGoroutines != len(gs)-count {
		t.Fatalf("scanner kept %d members, want %d", scanned.TotalGoroutines, len(gs)-count)
	}
}

func TestCorruptGzipFailsInflation(t *testing.T) {
	snap := &gprofile.Snapshot{
		Service:  "svc",
		Instance: "i-0",
		PreAggregated: map[stack.BlockedOp]int{
			{Op: "send", Location: "svc/x.go:10", Function: "svc.leak"}: 500,
		},
	}
	gz := gzipBody(renderSnapshot(snap))
	bad := CorruptGzip(gz)
	if bytes.Equal(bad, gz) {
		t.Fatal("CorruptGzip returned the stream unchanged")
	}
	zr, err := gzip.NewReader(bytes.NewReader(bad))
	if err == nil {
		_, err = io.Copy(io.Discard, zr)
	}
	if err == nil {
		t.Fatal("corrupted gzip stream inflated cleanly")
	}
}

func TestInjectorWrapFaults(t *testing.T) {
	honest := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "goroutine 1 [chan send]:\nmain.leak()\n\tmain.go:10 +0x1\n\n")
	})

	t.Run("flap", func(t *testing.T) {
		inj := &Injector{Seed: 1, Faults: Faults{FlapProb: 1}}
		rec := httptest.NewRecorder()
		inj.Wrap("i-0", honest).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("flap returned %d, want 503", rec.Code)
		}
		if st := inj.Stats(); st.Flapped != 1 || st.Fired() != 1 {
			t.Fatalf("stats = %+v, want one flap", st)
		}
	})

	t.Run("torn", func(t *testing.T) {
		inj := &Injector{Seed: 1, Faults: Faults{TornProb: 1, TornFrac: 0.5}}
		rec := httptest.NewRecorder()
		inj.Wrap("i-0", honest).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("torn response code %d, want 200", rec.Code)
		}
		full := httptest.NewRecorder()
		honest.ServeHTTP(full, httptest.NewRequest("GET", "/", nil))
		if got, want := rec.Body.Len(), full.Body.Len()/2; got != want {
			t.Fatalf("torn body %d bytes, want %d", got, want)
		}
	})

	t.Run("deploy-exactly-once", func(t *testing.T) {
		fired := 0
		inj := &Injector{Seed: 1, Faults: Faults{DeployAfter: 3}, OnDeploy: func() { fired++ }}
		h := inj.Wrap("i-0", honest)
		for i := 0; i < 6; i++ {
			h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
		}
		if fired != 1 {
			t.Fatalf("OnDeploy fired %d times over 6 requests, want exactly 1", fired)
		}
	})

	t.Run("composed", func(t *testing.T) {
		// Everything at once: the request must still terminate and the
		// body corruptions stack on the rendered output.
		inj := &Injector{Seed: 1, Faults: Faults{
			SlowProb: 1, SlowFor: time.Millisecond,
			TornProb: 1, TornFrac: 0.9,
			MalformProb: 1, MalformEvery: 1,
		}}
		rec := httptest.NewRecorder()
		inj.Wrap("i-0", honest).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		st := inj.Stats()
		if st.Slowed != 1 || st.Torn != 1 || st.Malformed != 1 {
			t.Fatalf("composed faults did not all fire: %+v", st)
		}
	})
}

func TestSimulatable(t *testing.T) {
	sims := patterns.Simulatable()
	if len(sims) < 5 {
		t.Fatalf("Simulatable returned %d patterns, want at least 5", len(sims))
	}
	in := map[string]bool{}
	for _, p := range sims {
		in[p.Name] = true
		rep := p.Stacks(1, 1)
		if len(rep) == 0 {
			t.Errorf("%s: Stacks(1, 1) produced nothing", p.Name)
			continue
		}
		if _, ok := rep[0].BlockedChannelOp(); !ok {
			t.Errorf("%s: representative record has no blocked channel op", p.Name)
		}
	}
	// Everything Simulatable left out must genuinely fail the criterion:
	// no synthesised stacks, or no channel-blocked representative.
	for _, p := range patterns.All() {
		if in[p.Name] || p.Stacks == nil {
			continue
		}
		rep := p.Stacks(1, 1)
		if len(rep) == 0 {
			continue
		}
		if _, ok := rep[0].BlockedChannelOp(); ok {
			t.Errorf("%s excluded from Simulatable despite a channel-blocked representative", p.Name)
		}
	}
}
