// Package chaos is a composable fault-injection layer for the fleet
// simulator: it wraps the pull path (per-instance profile endpoints)
// and the push path (ingest POSTers) with independently seeded,
// combinable faults — slow and hung endpoints, flapping instances,
// torn and malformed dump bodies, corrupt gzip streams, rolling deploys
// mid-sweep — so the retry, error-budget, salvage, and backpressure
// machinery faces a coordinated adversarial workload instead of the
// well-behaved seed scenarios.
//
// Every fault decision is a pure hash of (seed, fault kind, instance,
// attempt counter): which instance misbehaves on which attempt is fully
// determined by the scenario seed, never by goroutine scheduling, so a
// failing scenario replays identically under -race, under -count=100,
// and in CI. Faults compose freely — one request can be slow AND serve
// a torn body — because each kind rolls its own independent hash.
package chaos

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"
)

// Faults configures one injector's fault mix. Zero values disable each
// fault; probabilities are per-request (pull path) or per-post (push
// path), rolled independently per fault kind.
type Faults struct {
	// SlowProb delays a fetch by SlowFor before responding — latency
	// the sweep's parallelism must absorb and, when SlowFor exceeds the
	// pipeline timeout, a timeout the retry policy must survive.
	SlowProb float64
	SlowFor  time.Duration

	// HangProb wedges the handler until the client gives up (the
	// request context is cancelled) — the hard version of slow: only
	// the pipeline's per-endpoint timeout unsticks the sweep.
	HangProb float64

	// FlapProb fails the request outright with 503, the flapping
	// instance mid-restart; a later attempt (retry) may find it up.
	FlapProb float64

	// TornProb truncates the rendered dump body to TornFrac of its
	// bytes — a connection cut mid-transfer. The scanner treats a dump
	// that simply ends as complete, so torn bodies silently undercount;
	// detection must survive on the instances that answered whole.
	TornProb float64
	// TornFrac is the fraction of the body kept (default 0.5).
	TornFrac float64

	// MalformProb corrupts every MalformEvery-th goroutine header in
	// the body — line noise in the dump text. The scanner resyncs past
	// each corrupt member and counts it in Malformed(), surfacing as an
	// ErrSalvaged failure in the sweep's error accounting.
	MalformProb float64
	// MalformEvery picks which members are corrupted (default 2).
	MalformEvery int

	// DeployAfter triggers the injector's OnDeploy hook exactly once,
	// when the DeployAfter-th request (across all instances) arrives —
	// the deterministic mid-sweep point for a rolling deploy.
	DeployAfter int
}

func (f Faults) tornFrac() float64 {
	if f.TornFrac <= 0 || f.TornFrac >= 1 {
		return 0.5
	}
	return f.TornFrac
}

func (f Faults) malformEvery() int {
	if f.MalformEvery < 1 {
		return 2
	}
	return f.MalformEvery
}

// Injector applies a Faults mix to wrapped handlers. One injector
// serves a whole fleet; per-instance attempt counters keep decisions
// independent of fetch interleaving.
type Injector struct {
	// Seed drives every fault decision; two injectors with the same
	// seed and faults misbehave identically.
	Seed int64
	// Faults is the fault mix.
	Faults Faults
	// OnDeploy fires once when the DeployAfter-th request arrives
	// (typically fleet.DeployRolling — the mid-sweep version skew).
	OnDeploy func()

	requests atomic.Uint64
	counters sync.Map // instance name -> *atomic.Uint64

	slowed    atomic.Uint64
	hung      atomic.Uint64
	flapped   atomic.Uint64
	torn      atomic.Uint64
	malformed atomic.Uint64
	deploys   atomic.Uint64
}

// Stats is a point-in-time count of faults actually fired.
type Stats struct {
	Requests, Slowed, Hung, Flapped, Torn, Malformed, Deploys uint64
}

// Stats returns the injector's fired-fault counters.
func (inj *Injector) Stats() Stats {
	return Stats{
		Requests:  inj.requests.Load(),
		Slowed:    inj.slowed.Load(),
		Hung:      inj.hung.Load(),
		Flapped:   inj.flapped.Load(),
		Torn:      inj.torn.Load(),
		Malformed: inj.malformed.Load(),
		Deploys:   inj.deploys.Load(),
	}
}

// Fired sums every fault the injector actually applied.
func (s Stats) Fired() uint64 {
	return s.Slowed + s.Hung + s.Flapped + s.Torn + s.Malformed + s.Deploys
}

// Roll returns the deterministic uniform [0, 1) draw for one fault
// decision: seed × kind × key × attempt. Exposed so push-path callers
// (posters corrupting their own bodies) draw from the same sequence the
// pull-path wrapper uses.
func (inj *Injector) Roll(kind, key string, n uint64) float64 {
	return hash01(inj.Seed, kind, key, n)
}

func hash01(seed int64, kind, key string, n uint64) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	io.WriteString(h, kind)
	h.Write([]byte{0})
	io.WriteString(h, key)
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(b[:], n)
	h.Write(b[:])
	// Top 53 bits -> [0, 1) with full double precision.
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Hash01 is the package-level deterministic draw, for callers that
// roll fault decisions without an Injector (push-path scenarios).
func Hash01(seed int64, kind, key string, n uint64) float64 {
	return hash01(seed, kind, key, n)
}

// attempt returns this instance's next 1-based request ordinal.
// Per-endpoint fetches are sequential (retries included), so the
// ordinal — and with it every fault decision — is independent of how
// the sweep interleaves instances.
func (inj *Injector) attempt(name string) uint64 {
	v, ok := inj.counters.Load(name)
	if !ok {
		v, _ = inj.counters.LoadOrStore(name, new(atomic.Uint64))
	}
	return v.(*atomic.Uint64).Add(1)
}

// noteRequest counts one request against the global total and fires the
// deploy hook when the configured request arrives. Equality on the
// atomic increment makes the hook exactly-once without a lock.
func (inj *Injector) noteRequest() {
	total := inj.requests.Add(1)
	if inj.Faults.DeployAfter > 0 && total == uint64(inj.Faults.DeployAfter) && inj.OnDeploy != nil {
		inj.deploys.Add(1)
		inj.OnDeploy()
	}
}

// Wrap decorates one instance's profile handler with the injector's
// fault mix — the pull-path seam, shaped for fleet.ServeWith. Faults
// compose in severity order: a flap pre-empts the body, a hang wedges
// until the client's context dies, a slow delays, and body corruption
// (torn, malformed) applies to whatever the honest handler rendered.
func (inj *Injector) Wrap(name string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inj.noteRequest()
		n := inj.attempt(name)
		ft := inj.Faults
		if ft.FlapProb > 0 && inj.Roll("flap", name, n) < ft.FlapProb {
			inj.flapped.Add(1)
			http.Error(w, "chaos: instance flapping", http.StatusServiceUnavailable)
			return
		}
		if ft.HangProb > 0 && inj.Roll("hang", name, n) < ft.HangProb {
			inj.hung.Add(1)
			<-r.Context().Done()
			return
		}
		if ft.SlowProb > 0 && inj.Roll("slow", name, n) < ft.SlowProb {
			inj.slowed.Add(1)
			select {
			case <-time.After(ft.SlowFor):
			case <-r.Context().Done():
				return
			}
		}
		rec := httptest.NewRecorder()
		next.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if ft.TornProb > 0 && inj.Roll("torn", name, n) < ft.TornProb {
			inj.torn.Add(1)
			body = Torn(body, ft.tornFrac())
		}
		if ft.MalformProb > 0 && inj.Roll("malform", name, n) < ft.MalformProb {
			var mutated int
			body, mutated = MalformHeaders(body, ft.malformEvery())
			if mutated > 0 {
				inj.malformed.Add(1)
			}
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(body)
	})
}

// Torn truncates body to keep frac of its bytes — a transfer cut
// mid-frame. The cut lands wherever the byte budget does, typically
// inside a stack frame line; the scanner treats the early end as a
// complete dump, so the damage is a silent undercount, not an error.
func Torn(body []byte, frac float64) []byte {
	if frac <= 0 {
		return nil
	}
	if frac >= 1 {
		return body
	}
	n := int(float64(len(body)) * frac)
	if n >= len(body) {
		n = len(body) - 1
	}
	if n < 0 {
		n = 0
	}
	return body[:n]
}

var (
	headerPrefix = []byte("goroutine ")
	headerSuffix = []byte("]:")
)

// MalformHeaders corrupts every k-th goroutine header in a debug=2 dump
// body — the closing "]" drops, leaving "goroutine N [state:", the
// exact shape the scanner's resync path classifies as a malformed
// member — and returns the mutated body plus how many members were
// corrupted. A scan of the result drops each corrupted member, resyncs
// at the next well-formed header, and reports the losses via
// Malformed().
func MalformHeaders(body []byte, k int) ([]byte, int) {
	if k < 1 {
		k = 1
	}
	var out []byte
	mutated, member := 0, 0
	for len(body) > 0 {
		line := body
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			line, body = body[:i+1], body[i+1:]
		} else {
			body = nil
		}
		trimmed := bytes.TrimRight(line, "\r\n")
		if bytes.HasPrefix(trimmed, headerPrefix) && bytes.HasSuffix(trimmed, headerSuffix) {
			member++
			if member%k == 0 {
				// "goroutine 123 [state]:" -> "goroutine 123 [state:".
				out = append(out, trimmed[:len(trimmed)-len(headerSuffix)]...)
				out = append(out, ':', '\n')
				mutated++
				continue
			}
		}
		out = append(out, line...)
	}
	return out, mutated
}

// CorruptGzip flips one byte in the middle of a gzip stream, past the
// header, so inflation starts cleanly and fails mid-body — the push
// path's torn-transfer analogue: the ingest scanner hits a hard read
// error, the POST is a 400, and the failure lands in the closing
// window's accounting.
func CorruptGzip(gz []byte) []byte {
	out := append([]byte(nil), gz...)
	if len(out) > 20 {
		out[len(out)/2] ^= 0xFF
	}
	return out
}
