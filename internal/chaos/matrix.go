package chaos

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/gprofile"
	"repro/internal/patterns"
	"repro/internal/stack"
	"repro/internal/textplot"
	"repro/leakprof"
)

// The scenario matrix: a named catalogue of fleet config × fault set ×
// pipeline mode combinations, each asserting detection precision and
// recall against the leaks it planted plus a latency SLO. The matrix is
// the CI-enforced answer to "does the pipeline still detect leaks when
// production misbehaves" — every fault decision is seeded, so a red
// cell reproduces exactly.
//
// Scoring is per service. A scenario plants leaks in half its services
// (growing past the detection threshold), leaves the rest benign, and
// optionally adds sub-threshold leakers as hard negatives. A service is
// detected when any sweep the scenario ran reports a finding for it.
// Precision = TP/(TP+FP) (1.0 when nothing was detected), recall =
// TP/planted — with planted reduced to the surviving partition when the
// scenario deliberately crashes or writes off a shard.

// Mode selects which pipeline path a scenario drives.
type Mode string

const (
	// ModeBatch is a pull sweep over per-instance HTTP endpoints.
	ModeBatch Mode = "batch"
	// ModeSharded is a distributed sweep: shard workers plus coordinator.
	ModeSharded Mode = "sharded"
	// ModeIngest is push ingestion: posters POST dumps into windows.
	ModeIngest Mode = "ingest"
)

// Expect names the fault evidence a scenario must observe to pass: a
// fault mix that silently never fired would otherwise let a scenario
// go green while testing nothing.
type Expect struct {
	// FetchErrors requires the sweep error accounting to show at least
	// one non-salvage failure.
	FetchErrors bool
	// Salvage requires at least one ErrSalvaged failure (scanner
	// resynced past malformed members).
	Salvage bool
	// ScanErrors requires at least one ingest body to fail scanning.
	ScanErrors bool
	// AuthRejects requires at least one 401 (push-plane token auth).
	AuthRejects bool
	// DupRejects requires at least one duplicate shard report 409.
	DupRejects bool
	// Deploys requires the mid-sweep rolling deploy to have fired.
	Deploys bool
	// Faults requires the injector to have fired at least one fault.
	Faults bool
}

// Scenario is one named cell of the matrix.
type Scenario struct {
	Name string
	Mode Mode
	// Note is the one-line intent shown in -matrix -v listings.
	Note string

	// Fleet shape: Services services of InstancesPer instances, leaks
	// grown for Days days before the scenario sweeps. Even-indexed
	// services carry planted leaks at LeakPerDay; with Subleak,
	// services at index 4k+1 leak at a sub-threshold trickle (hard
	// negatives for precision).
	Services, InstancesPer, Days int
	LeakPerDay                   int
	Subleak                      bool

	// Pipeline knobs.
	Threshold   int
	Timeout     time.Duration
	Retries     int
	ErrorBudget int
	Parallelism int

	// Pull-path fault mix (batch mode).
	Faults Faults
	// RollingDeployFrac, with Faults.DeployAfter, rolls this fraction
	// of every service's instances when the deploy fires.
	RollingDeployFrac float64

	// Sharded-mode shape. CrashShard and StragglerShard are 1-based so
	// the zero value means "none" (shard 0 stays crashable via 1).
	Shards            int
	CrashShard        int
	StragglerShard    int
	StragglerDelay    time.Duration
	StragglerDeadline time.Duration
	// Inbox routes shard reports over an HTTP ShardInbox instead of
	// in-process fetches; Duplicates re-POSTs every report (replay);
	// Token arms shared-secret auth; RogueUnauth adds an
	// unauthenticated poster injecting a fabricated leak.
	Inbox       bool
	Duplicates  bool
	Token       string
	RogueUnauth bool

	// Ingest-mode shape: Windows windows, each one simulated day of
	// leak growth, every instance POSTing once per window. The Post*
	// probabilities corrupt POSTed bodies per (window, instance);
	// PostSkew delays the post into the next window (poster clock
	// skew). Gzip compresses honest bodies.
	Windows     int
	PostTorn    float64
	PostMalform float64
	PostBadGzip float64
	PostSkew    float64
	Gzip        bool

	// Floors and SLO. LatencySLO bounds the sweep wall-clock (batch,
	// sharded) or the slowest window close (ingest).
	PrecisionFloor, RecallFloor float64
	LatencySLO                  time.Duration

	Seed   int64
	Expect Expect
}

// Result is one scenario's scored outcome.
type Result struct {
	Scenario *Scenario

	Planted, Detected, TP, FP int
	Precision, Recall         float64
	Latency                   time.Duration

	// Evidence is the observed fault accounting, for the table.
	Evidence string

	Pass    bool
	Reasons []string
	Err     error
}

// observed collects the fault evidence a run produced.
type observed struct {
	fetchErrors int
	salvage     int
	scanErrors  uint64
	authRejects uint64
	dupRejects  int
	deploys     uint64
	faults      uint64
}

func (o observed) String() string {
	var parts []string
	add := func(label string, n uint64) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", label, n))
		}
	}
	add("errors", uint64(o.fetchErrors))
	add("salvaged", uint64(o.salvage))
	add("scanerr", o.scanErrors)
	add("auth401", o.authRejects)
	add("dup409", uint64(o.dupRejects))
	add("deploys", o.deploys)
	add("faults", o.faults)
	if len(parts) == 0 {
		return "clean"
	}
	return strings.Join(parts, " ")
}

// Run executes one scenario and scores it.
func Run(ctx context.Context, sc *Scenario) *Result {
	ctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	switch sc.Mode {
	case ModeSharded:
		if sc.Inbox {
			return runInbox(ctx, sc)
		}
		return runSharded(ctx, sc)
	case ModeIngest:
		return runIngest(ctx, sc)
	default:
		return runBatch(ctx, sc)
	}
}

// RunAll executes every scenario in order.
func RunAll(ctx context.Context, scs []*Scenario) []*Result {
	out := make([]*Result, 0, len(scs))
	for _, sc := range scs {
		out = append(out, Run(ctx, sc))
	}
	return out
}

// RenderTable renders results as the pass/fail matrix table.
func RenderTable(results []*Result) string {
	header := []string{"scenario", "mode", "precision", "recall", "latency", "evidence", "result"}
	var rows [][]string
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL: " + strings.Join(r.Reasons, "; ")
		}
		rows = append(rows, []string{
			r.Scenario.Name,
			string(r.Scenario.Mode),
			fmt.Sprintf("%.2f (floor %.2f)", r.Precision, r.Scenario.PrecisionFloor),
			fmt.Sprintf("%.2f (floor %.2f)", r.Recall, r.Scenario.RecallFloor),
			fmt.Sprintf("%v (slo %v)", r.Latency.Round(time.Millisecond), r.Scenario.LatencySLO),
			r.Evidence,
			status,
		})
	}
	return textplot.Table(header, rows)
}

// matrixOrigin anchors every scenario's simulated clock; fixed so runs
// are reproducible.
var matrixOrigin = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// buildFleet plants the scenario's fleet: even services leak past the
// threshold (the planted positives), 4k+1 services optionally leak a
// sub-threshold trickle (hard negatives), the rest are benign. Leak
// patterns rotate through the live simulatable catalogue so the matrix
// covers every pattern shape, not the seed handful.
func buildFleet(sc *Scenario) (*fleet.Fleet, map[string]bool) {
	sims := patterns.Simulatable()
	planted := make(map[string]bool)
	var configs []fleet.ServiceConfig
	for s := 0; s < sc.Services; s++ {
		name := fmt.Sprintf("chaos-%02d", s)
		cfg := fleet.ServiceConfig{
			Name:             name,
			Instances:        sc.InstancesPer,
			BenignGoroutines: 20,
			Seed:             sc.Seed + int64(s),
			DeployEveryDays:  1 << 20, // deploys happen only when chaos says so
		}
		switch {
		case s%2 == 0:
			cfg.Pattern = sims[(s/2)%len(sims)]
			cfg.LeakFile = fmt.Sprintf("services/%s/worker.go", name)
			cfg.LeakLine = 42
			cfg.LeakPerDay = sc.LeakPerDay
			cfg.LeakStartDay = 1
			cfg.FixDay = -1
			planted[name] = true
		case sc.Subleak && s%4 == 1:
			cfg.Pattern = sims[(s/4+1)%len(sims)]
			cfg.LeakFile = fmt.Sprintf("services/%s/poll.go", name)
			cfg.LeakLine = 7
			cfg.LeakPerDay = max(1, sc.Threshold/(4*max(1, sc.Days)))
			cfg.LeakStartDay = 1
			cfg.FixDay = -1
		}
		configs = append(configs, cfg)
	}
	f := fleet.New(matrixOrigin, configs)
	for d := 0; d < sc.Days; d++ {
		f.AdvanceDay()
	}
	return f, planted
}

// pipelineOptions assembles the scenario's pipeline knobs.
func pipelineOptions(sc *Scenario) []leakprof.Option {
	par := sc.Parallelism
	if par <= 0 {
		par = 8
	}
	opts := []leakprof.Option{
		leakprof.WithThreshold(sc.Threshold),
		leakprof.WithParallelism(par),
		leakprof.WithSharedIntern(0),
	}
	if sc.Timeout > 0 {
		opts = append(opts, leakprof.WithTimeout(sc.Timeout))
	}
	if sc.Retries > 1 {
		opts = append(opts, leakprof.WithRetry(leakprof.RetryPolicy{
			MaxAttempts: sc.Retries,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
		}))
	}
	if sc.ErrorBudget > 0 {
		opts = append(opts, leakprof.WithErrorBudget(sc.ErrorBudget))
	}
	return opts
}

// tallySweep folds one sweep's findings and failures into the score.
func tallySweep(sweep *leakprof.Sweep, detected map[string]bool, obs *observed) {
	if sweep == nil {
		return
	}
	for _, f := range sweep.Findings {
		detected[f.Service] = true
	}
	for _, f := range sweep.Failures {
		if errors.Is(f.Err, gprofile.ErrSalvaged) {
			obs.salvage++
		} else {
			obs.fetchErrors++
		}
	}
}

// finish scores the run against the scenario's floors, SLO, and
// expected evidence.
func finish(sc *Scenario, planted, detected map[string]bool, latency time.Duration, obs observed, err error) *Result {
	res := &Result{
		Scenario: sc,
		Planted:  len(planted),
		Detected: len(detected),
		Latency:  latency,
		Evidence: obs.String(),
		Err:      err,
	}
	for svc := range detected {
		if planted[svc] {
			res.TP++
		} else {
			res.FP++
		}
	}
	res.Precision = 1.0
	if res.TP+res.FP > 0 {
		res.Precision = float64(res.TP) / float64(res.TP+res.FP)
	}
	res.Recall = 1.0
	if len(planted) > 0 {
		res.Recall = float64(res.TP) / float64(len(planted))
	}

	fail := func(format string, args ...any) {
		res.Reasons = append(res.Reasons, fmt.Sprintf(format, args...))
	}
	if err != nil {
		fail("run error: %v", err)
	}
	if res.Precision < sc.PrecisionFloor {
		fail("precision %.2f < floor %.2f", res.Precision, sc.PrecisionFloor)
	}
	if res.Recall < sc.RecallFloor {
		fail("recall %.2f < floor %.2f", res.Recall, sc.RecallFloor)
	}
	if sc.LatencySLO > 0 && latency > sc.LatencySLO {
		fail("latency %v > SLO %v", latency.Round(time.Millisecond), sc.LatencySLO)
	}
	ex := sc.Expect
	if ex.FetchErrors && obs.fetchErrors == 0 {
		fail("expected fetch errors, saw none")
	}
	if ex.Salvage && obs.salvage == 0 {
		fail("expected salvage accounting, saw none")
	}
	if ex.ScanErrors && obs.scanErrors == 0 {
		fail("expected scan errors, saw none")
	}
	if ex.AuthRejects && obs.authRejects == 0 {
		fail("expected auth 401s, saw none")
	}
	if ex.DupRejects && obs.dupRejects == 0 {
		fail("expected duplicate 409s, saw none")
	}
	if ex.Deploys && obs.deploys == 0 {
		fail("expected a mid-sweep deploy, saw none")
	}
	if ex.Faults && obs.faults == 0 {
		fail("expected injected faults, saw none")
	}
	res.Pass = len(res.Reasons) == 0
	return res
}

// runBatch drives a pull sweep over fault-wrapped HTTP endpoints.
func runBatch(ctx context.Context, sc *Scenario) *Result {
	f, planted := buildFleet(sc)
	inj := &Injector{Seed: sc.Seed, Faults: sc.Faults}
	if sc.RollingDeployFrac > 0 {
		frac := sc.RollingDeployFrac
		inj.OnDeploy = func() { f.DeployRolling(frac) }
	}
	endpoints, shutdown := f.ServeWith(func(in *fleet.Instance, h http.Handler) http.Handler {
		return inj.Wrap(in.Name, h)
	})
	defer shutdown()

	pipe := leakprof.New(pipelineOptions(sc)...)
	start := time.Now()
	sweep, err := pipe.Sweep(ctx, leakprof.StaticEndpoints(endpoints...))
	latency := time.Since(start)
	if cerr := pipe.Close(); err == nil {
		err = cerr
	}

	detected := make(map[string]bool)
	var obs observed
	tallySweep(sweep, detected, &obs)
	st := inj.Stats()
	obs.deploys = st.Deploys
	obs.faults = st.Fired()
	return finish(sc, planted, detected, latency, obs, err)
}

// runSharded drives a distributed topology sweep, optionally crashing
// one shard or delaying one past the straggler deadline. Services owned
// by a deliberately lost shard leave the planted set: their leaks are
// the price of the injected fault, and the scenario instead asserts the
// loss is visible in the error accounting.
func runSharded(ctx context.Context, sc *Scenario) *Result {
	f, planted := buildFleet(sc)
	topo := fleet.NewTopology(f, sc.Shards, pipelineOptions(sc)...)
	lost := -1
	if sc.CrashShard > 0 {
		topo.FailShard = sc.CrashShard - 1
		lost = topo.FailShard
	}
	if sc.StragglerShard > 0 {
		topo.DelayShard = sc.StragglerShard - 1
		topo.ShardDelay = sc.StragglerDelay
		if sc.StragglerDeadline > 0 && sc.StragglerDeadline < sc.StragglerDelay {
			lost = topo.DelayShard
		}
	}
	topo.StragglerDeadline = sc.StragglerDeadline

	start := time.Now()
	sweep, err := topo.Sweep(ctx)
	latency := time.Since(start)
	if cerr := topo.Coordinator.Close(); err == nil {
		err = cerr
	}

	if lost >= 0 {
		for svc := range planted {
			if leakprof.ShardOfService(svc, sc.Shards) == lost {
				delete(planted, svc)
			}
		}
	}
	detected := make(map[string]bool)
	var obs observed
	tallySweep(sweep, detected, &obs)
	return finish(sc, planted, detected, latency, obs, err)
}

// runInbox drives a sharded sweep over the HTTP ShardInbox transport:
// workers POST their reports (optionally twice — the replay), a rogue
// poster optionally injects an unauthenticated report, and the
// coordinator merges whatever the inbox accepted.
func runInbox(ctx context.Context, sc *Scenario) *Result {
	f, planted := buildFleet(sc)
	opts := pipelineOptions(sc)

	var reports []*leakprof.ShardReport
	var err error
	for i := 0; i < sc.Shards && err == nil; i++ {
		worker := leakprof.New(opts...)
		var rep *leakprof.ShardReport
		rep, err = worker.ShardSweep(ctx, f.ShardSource(i, sc.Shards), fmt.Sprintf("shard-%d", i), nil)
		if err == nil {
			reports = append(reports, rep)
		}
		worker.Close()
	}
	if err != nil {
		return finish(sc, planted, nil, 0, observed{}, err)
	}

	inbox := leakprof.NewShardInbox(sc.Shards)
	inbox.Token = sc.Token
	hs := httptest.NewServer(inbox)
	defer hs.Close()

	var obs observed
	start := time.Now()
	if sc.RogueUnauth {
		// A poster without the token replays a real report; the inbox
		// must refuse it before it can double-count the shard.
		if perr := leakprof.PostShardReport(ctx, nil, hs.URL, reports[0]); perr == nil {
			err = errors.New("unauthenticated shard report was accepted")
		}
		obs.authRejects = inbox.AuthRejected()
	}
	for _, rep := range reports {
		if perr := leakprof.PostShardReportAuth(ctx, nil, hs.URL, sc.Token, rep); perr != nil && err == nil {
			err = perr
		}
		if sc.Duplicates {
			// The replayed delivery: same shard, same sequence. The
			// inbox must 409 it or the merge double-counts.
			if perr := leakprof.PostShardReportAuth(ctx, nil, hs.URL, sc.Token, rep); perr != nil {
				obs.dupRejects++
			} else if err == nil {
				err = fmt.Errorf("duplicate report for %s was accepted", rep.Shard)
			}
		}
	}
	var fetches []leakprof.ShardFetch
	for i := 0; i < sc.Shards; i++ {
		fetches = append(fetches, inbox.Fetch(fmt.Sprintf("shard-%d", i)))
	}
	coord := leakprof.New(opts...)
	sweep, serr := coord.Sweep(ctx, leakprof.MergedReports(fetches...))
	latency := time.Since(start)
	if err == nil {
		err = serr
	}
	if cerr := coord.Close(); err == nil {
		err = cerr
	}

	detected := make(map[string]bool)
	tallySweep(sweep, detected, &obs)
	return finish(sc, planted, detected, latency, obs, err)
}

// fakeClock is the ingest scenarios' pipeline clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// ingestPost is one POST the ingest scenarios send: possibly corrupted,
// possibly deferred into the next window by poster clock skew.
type ingestPost struct {
	service, instance string
	body              []byte
	gz                bool
}

// runIngest drives push ingestion through fake-clock tumbling windows:
// every instance POSTs once per window (one simulated day of growth per
// window), with the scenario's fault mix corrupting or delaying
// individual posts. Detection is scored over the union of window
// sweeps; the latency metric is the slowest window close (tick to
// emitted sweep).
func runIngest(ctx context.Context, sc *Scenario) *Result {
	f, planted := buildFleet(sc)
	window := time.Minute
	clock := &fakeClock{t: matrixOrigin.Add(time.Duration(sc.Days) * 24 * time.Hour)}
	ticks := make(chan time.Time, 1)
	sweepCh := make(chan *leakprof.Sweep, sc.Windows+2)

	opts := append(pipelineOptions(sc),
		leakprof.WithWindow(window),
		leakprof.WithClock(clock.Now),
		leakprof.WithOnSweep(func(s *leakprof.Sweep) { sweepCh <- s }),
	)
	pipe := leakprof.New(opts...)
	iopts := []leakprof.IngestOption{leakprof.IngestTicks(ticks)}
	if sc.Token != "" {
		iopts = append(iopts, leakprof.IngestAuthToken(sc.Token))
	}
	srv := leakprof.NewIngestServer(pipe, iopts...)
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		srv.Run(ictx)
	}()

	detected := make(map[string]bool)
	var obs observed
	var err error
	var maxClose time.Duration
	var carry []ingestPost // skewed posts arriving a window late

	rogueBody := renderRogue(sc)
	for w := 0; w < sc.Windows && err == nil; w++ {
		posts := carry
		carry = nil
		for _, snap := range f.SnapshotsAggregated() {
			key := snap.Instance
			n := uint64(w)
			body := renderSnapshot(snap)
			p := ingestPost{service: snap.Service, instance: snap.Instance}
			switch {
			case sc.PostBadGzip > 0 && Hash01(sc.Seed, "badgzip", key, n) < sc.PostBadGzip:
				p.body, p.gz = CorruptGzip(gzipBody(body)), true
			default:
				if sc.PostTorn > 0 && Hash01(sc.Seed, "torn", key, n) < sc.PostTorn {
					body = Torn(body, 0.5)
				}
				if sc.PostMalform > 0 && Hash01(sc.Seed, "malform", key, n) < sc.PostMalform {
					body, _ = MalformHeaders(body, 2)
				}
				p.body = body
				if sc.Gzip {
					p.body, p.gz = gzipBody(body), true
				}
			}
			if sc.PostSkew > 0 && Hash01(sc.Seed, "skew", key, n) < sc.PostSkew {
				carry = append(carry, p) // the poster's clock runs behind
				continue
			}
			posts = append(posts, p)
		}
		if sc.RogueUnauth {
			// The rogue poster fabricates a leak for a benign service;
			// without the token the claim must die at the door.
			code := postIngest(srv, ingestPost{service: benignService(sc), instance: "rogue-0", body: rogueBody}, "")
			if code != http.StatusUnauthorized {
				err = fmt.Errorf("rogue unauthenticated post got %d, want 401", code)
			}
		}
		for _, p := range posts {
			postIngest(srv, p, sc.Token)
		}
		// Everything admitted must fold before the window closes, so
		// each window's findings are deterministic.
		if werr := waitStats(srv, func(st leakprof.IngestStats) bool {
			return st.Folded == st.Admitted
		}); werr != nil && err == nil {
			err = werr
		}
		clock.Advance(window + time.Millisecond)
		closeStart := time.Now()
		select {
		case ticks <- time.Time{}:
		case <-ctx.Done():
			err = ctx.Err()
		}
		select {
		case sweep := <-sweepCh:
			if d := time.Since(closeStart); d > maxClose {
				maxClose = d
			}
			tallySweep(sweep, detected, &obs)
		case <-time.After(10 * time.Second):
			if err == nil {
				err = fmt.Errorf("window %d never closed", w)
			}
		case <-ctx.Done():
			err = ctx.Err()
		}
		f.AdvanceDay() // next window sees another day of growth
	}
	cancel()
	<-runDone
	pipe.Close()

	st := srv.Stats()
	obs.scanErrors = st.ScanErrors
	obs.authRejects = st.AuthRejected
	return finish(sc, planted, detected, maxClose, obs, err)
}

// benignService names the scenario's first benign (odd-index) service.
func benignService(sc *Scenario) string { return "chaos-01" }

// renderRogue fabricates a dump body claiming a huge leak — what an
// attacker would POST to frame a healthy service.
func renderRogue(sc *Scenario) []byte {
	snap := &gprofile.Snapshot{
		Service:  benignService(sc),
		Instance: "rogue-0",
		PreAggregated: map[stack.BlockedOp]int{
			{Op: "send", Location: "services/rogue/evil.go:666", Function: "rogue.frame"}: sc.Threshold * 10,
		},
	}
	return renderSnapshot(snap)
}

// renderSnapshot renders a snapshot as the debug=2 body its instance
// would POST.
func renderSnapshot(snap *gprofile.Snapshot) []byte {
	var buf bytes.Buffer
	if err := gprofile.WriteSnapshot(&buf, snap); err != nil {
		panic(err) // in-memory render of a synthesised snapshot cannot fail
	}
	return buf.Bytes()
}

func gzipBody(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(b)
	zw.Close()
	return buf.Bytes()
}

// postIngest POSTs one body straight at the server handler.
func postIngest(srv http.Handler, p ingestPost, token string) int {
	req := httptest.NewRequest(http.MethodPost, "/?service="+p.service+"&instance="+p.instance, bytes.NewReader(p.body))
	if p.gz {
		req.Header.Set("Content-Encoding", "gzip")
	}
	if token != "" {
		req.Header.Set("X-Leakprof-Token", token)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Code
}

// waitStats polls the server's counters until cond holds.
func waitStats(srv *leakprof.IngestServer, cond func(leakprof.IngestStats) bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for !cond(srv.Stats()) {
		if time.Now().After(deadline) {
			return errors.New("timed out waiting for ingest folds")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// Catalogue is the named scenario matrix: ≥8 scenarios spanning every
// pipeline mode, from a clean baseline to a hostile composition of four
// simultaneous fault types. Floors are asserted per scenario; the
// hostile cells keep non-trivial floors to prove detection degrades
// gracefully rather than collapsing.
func Catalogue() []*Scenario {
	base := func(sc *Scenario) *Scenario {
		if sc.Services == 0 {
			sc.Services = 8
		}
		if sc.InstancesPer == 0 {
			sc.InstancesPer = 3
		}
		if sc.Days == 0 {
			sc.Days = 3
		}
		if sc.LeakPerDay == 0 {
			sc.LeakPerDay = 200
		}
		if sc.Threshold == 0 {
			sc.Threshold = 300
		}
		if sc.Timeout == 0 {
			sc.Timeout = 2 * time.Second
		}
		if sc.LatencySLO == 0 {
			sc.LatencySLO = 15 * time.Second
		}
		if sc.Seed == 0 {
			sc.Seed = 1
		}
		sc.Subleak = true
		return sc
	}
	return []*Scenario{
		base(&Scenario{
			Name: "baseline-batch", Mode: ModeBatch,
			Note:           "clean pull sweep: every planted leak found, nothing else",
			PrecisionFloor: 1.0, RecallFloor: 1.0,
		}),
		base(&Scenario{
			Name: "slow-fleet", Mode: ModeBatch,
			Note:           "30% of fetches delayed 60ms; latency absorbed, detection intact",
			Faults:         Faults{SlowProb: 0.3, SlowFor: 60 * time.Millisecond},
			Expect:         Expect{Faults: true},
			PrecisionFloor: 1.0, RecallFloor: 1.0,
		}),
		base(&Scenario{
			Name: "hung-endpoints", Mode: ModeBatch,
			Note:    "40% of fetches wedge until the 250ms timeout; retries + budgets recover most",
			Timeout: 250 * time.Millisecond, Retries: 2, ErrorBudget: 3,
			Faults:         Faults{HangProb: 0.4},
			Expect:         Expect{Faults: true, FetchErrors: true},
			PrecisionFloor: 1.0, RecallFloor: 0.75,
		}),
		base(&Scenario{
			Name: "flapping-instances", Mode: ModeBatch,
			Note:           "40% of fetches hit a restarting instance (503); retries ride it out",
			Retries:        3,
			Faults:         Faults{FlapProb: 0.4},
			Expect:         Expect{Faults: true},
			PrecisionFloor: 1.0, RecallFloor: 1.0,
		}),
		base(&Scenario{
			Name: "torn-dumps", Mode: ModeBatch,
			Note:           "40% of bodies cut mid-frame, 40% with corrupted headers; salvage accounts the damage",
			Faults:         Faults{TornProb: 0.4, TornFrac: 0.45, MalformProb: 0.4, MalformEvery: 2},
			Expect:         Expect{Faults: true, Salvage: true},
			PrecisionFloor: 1.0, RecallFloor: 0.75,
		}),
		base(&Scenario{
			Name: "rolling-deploy", Mode: ModeBatch,
			Note:              "half the fleet deploys mid-sweep; the un-rolled instances still convict",
			Faults:            Faults{DeployAfter: 12},
			RollingDeployFrac: 0.5,
			Expect:            Expect{Deploys: true},
			PrecisionFloor:    1.0, RecallFloor: 1.0,
		}),
		base(&Scenario{
			Name: "shard-crash", Mode: ModeSharded,
			Note:   "one of three shards crashes before reporting; the merge survives with its loss on the books",
			Shards: 3, CrashShard: 2,
			Expect:         Expect{FetchErrors: true},
			PrecisionFloor: 1.0, RecallFloor: 1.0,
		}),
		base(&Scenario{
			Name: "straggler-shard", Mode: ModeSharded,
			Note:   "one shard 1s late against a 150ms straggler deadline; the sweep must not wait for it",
			Shards: 3, StragglerShard: 1,
			StragglerDelay:    time.Second,
			StragglerDeadline: 150 * time.Millisecond,
			LatencySLO:        800 * time.Millisecond,
			Expect:            Expect{FetchErrors: true},
			PrecisionFloor:    1.0, RecallFloor: 1.0,
		}),
		base(&Scenario{
			Name: "replayed-reports", Mode: ModeSharded,
			Note:   "reports ship over an authed HTTP inbox; every report replayed (409) and a rogue post rejected (401)",
			Shards: 3, Inbox: true, Duplicates: true,
			Token: "chaos-secret", RogueUnauth: true,
			Expect:         Expect{DupRejects: true, AuthRejects: true},
			PrecisionFloor: 1.0, RecallFloor: 1.0,
		}),
		base(&Scenario{
			Name: "ingest-steady", Mode: ModeIngest,
			Note:    "three clean gzip push windows; every planted leak found in-window",
			Days:    2,
			Windows: 3, Gzip: true,
			LatencySLO:     5 * time.Second,
			PrecisionFloor: 1.0, RecallFloor: 1.0,
		}),
		base(&Scenario{
			Name: "ingest-hostile", Mode: ModeIngest,
			Note:     "four simultaneous push faults: torn bodies, corrupt headers, bad gzip, poster clock skew",
			Days:     2,
			Windows:  3,
			PostTorn: 0.3, PostMalform: 0.3, PostBadGzip: 0.2, PostSkew: 0.25,
			LatencySLO:     5 * time.Second,
			Expect:         Expect{Salvage: true, ScanErrors: true},
			PrecisionFloor: 1.0, RecallFloor: 0.9,
		}),
		base(&Scenario{
			Name: "ingest-auth", Mode: ModeIngest,
			Note:    "token-armed ingest; a rogue poster framing a benign service dies with 401",
			Days:    2,
			Windows: 2, Gzip: true,
			Token: "chaos-secret", RogueUnauth: true,
			LatencySLO:     5 * time.Second,
			Expect:         Expect{AuthRejects: true},
			PrecisionFloor: 1.0, RecallFloor: 1.0,
		}),
	}
}

// Lookup returns the named scenarios (all, when names is empty) in
// catalogue order.
func Lookup(names []string) ([]*Scenario, error) {
	all := Catalogue()
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[strings.TrimSpace(n)] = true
	}
	var out []*Scenario
	for _, sc := range all {
		if want[sc.Name] {
			out = append(out, sc)
			delete(want, sc.Name)
		}
	}
	if len(want) > 0 {
		var missing []string
		for n := range want {
			missing = append(missing, n)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("chaos: unknown scenarios: %s", strings.Join(missing, ", "))
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
