// Package astcheck implements the lightweight AST-level static analyses
// that accompany the paper's dynamic tools:
//
//   - Transient-select detection (Section V-A, criterion 2): select
//     statements whose blocking arms all listen on provably transient
//     channels (time.Tick, time.After, context.Done) are harmless, and
//     LEAKPROF filters goroutines blocked there out of its reports.
//   - The range linter (Section VIII, future work): flags lexically
//     scoped channels that are ranged over but never closed, the
//     Listing-3 defect class.
//   - The double-send checker: flags the Listing-5 missing-return bug,
//     where an error-path send falls through to a second send on the
//     same channel.
//
// All analyses are intraprocedural and syntax-directed: they trade recall
// for near-zero cost and very high precision, exactly the design point the
// paper argues for.
package astcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// Finding is one analysis hit.
type Finding struct {
	// Check names the producing analysis: "rangelint", "doublesend",
	// "transient-select".
	Check string
	// Pos is the source position of the flagged construct.
	Pos token.Position
	// Message is the human-readable diagnostic.
	Message string
}

// Location renders file:line, the key used to join against profile data.
func (f Finding) Location() string {
	return fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
}

// String renders the finding as a compiler-style diagnostic.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// File is a parsed source file ready for analysis.
type File struct {
	Fset *token.FileSet
	Ast  *ast.File
	// Name is the file path used in positions.
	Name string
}

// ParseSource parses Go source text under the given file name.
func ParseSource(name, src string) (*File, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("astcheck: parsing %s: %w", name, err)
	}
	return &File{Fset: fset, Ast: f, Name: name}, nil
}

// ParseDir parses every .go file under root (recursively), skipping
// directories named "testdata" and files that fail to parse.
func ParseDir(root string) ([]*File, error) {
	var out []*File
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, perr := ParseSource(path, string(src))
		if perr != nil {
			return nil // tolerate unparseable files in large trees
		}
		out = append(out, f)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("astcheck: walking %s: %w", root, err)
	}
	return out, nil
}

// AnalyzeAll runs every analysis over the files.
func AnalyzeAll(files []*File) []Finding {
	var out []Finding
	for _, f := range files {
		out = append(out, RangeLint(f)...)
		out = append(out, DoubleSendLint(f)...)
		out = append(out, TimerLoopLint(f)...)
		out = append(out, TransientSelects(f)...)
	}
	return out
}
