package astcheck

import "testing"

func TestTimerLoopFlagsListing4(t *testing.T) {
	src := `package p
import "time"
func statsReporter() {
	go func() {
		for {
			<-time.After(time.Minute)
			logMetric()
		}
	}()
}
func logMetric() {}
`
	fs := TimerLoopLint(mustParse(t, src))
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if fs[0].Check != "timerloop" || fs[0].Pos.Line != 6 {
		t.Errorf("finding = %+v", fs[0])
	}
}

func TestTimerLoopVariants(t *testing.T) {
	flagged := map[string]string{
		"tick": `package p
import "time"
func f() { for { <-time.Tick(time.Second) } }
`,
		"timer channel": `package p
import "time"
func f(t *time.Timer) { for { <-t.C; work() } }
func work() {}
`,
		"assignment form": `package p
import "time"
func f() { for { now := <-time.After(time.Second); _ = now } }
`,
	}
	for name, src := range flagged {
		if fs := TimerLoopLint(mustParse(t, src)); len(fs) != 1 {
			t.Errorf("%s: findings = %v, want 1", name, fs)
		}
	}

	clean := map[string]string{
		"select with done": `package p
import "time"
func f(done chan int) {
	for {
		select {
		case <-time.After(time.Second):
		case <-done:
			return
		}
	}
}
`,
		"loop with escape": `package p
import "time"
func f(n int) {
	i := 0
	for {
		<-time.After(time.Second)
		i++
		if i > n {
			return
		}
	}
}
`,
		"bounded loop": `package p
import "time"
func f(n int) {
	for i := 0; i < n; i++ {
		<-time.After(time.Second)
	}
}
`,
		"ordinary channel": `package p
func f(ch chan int) { for { <-ch } }
`,
	}
	for name, src := range clean {
		if fs := TimerLoopLint(mustParse(t, src)); len(fs) != 0 {
			t.Errorf("%s: flagged clean code: %v", name, fs)
		}
	}
}
