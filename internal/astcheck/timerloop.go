package astcheck

import (
	"go/ast"
	"go/token"
)

// TimerLoopLint flags the Listing-4 anti-pattern: a for loop whose body
// blocks on a bare timer receive (<-time.After(...), <-time.Tick(...),
// <-t.C) with no select statement and no escape path, typically inside a
// goroutine whose lifetime nothing controls. The paper classifies these
// as 44% of all channel-receive leaks and recommends rewriting them as a
// select with a termination arm.
func TimerLoopLint(f *File) []Finding {
	var out []Finding
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
			return true // only bare `for { ... }` loops
		}
		if loopHasEscape(loop.Body) || loopHasSelect(loop.Body) {
			return true
		}
		for _, stmt := range loop.Body.List {
			if pos, ok := bareTimerRecv(stmt); ok {
				out = append(out, Finding{
					Check: "timerloop",
					Pos:   f.Fset.Position(pos),
					Message: "infinite loop blocks on a bare timer receive with no termination arm; " +
						"use a select with a done/context case",
				})
				break
			}
		}
		return true
	})
	return out
}

// bareTimerRecv recognises `<-time.After(d)`, `<-time.Tick(d)` and
// `<-t.C` as expression statements or assignments.
func bareTimerRecv(stmt ast.Stmt) (pos token.Pos, ok bool) {
	var expr ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	recv, isRecv := expr.(*ast.UnaryExpr)
	if !isRecv {
		return token.NoPos, false
	}
	if !transientChannelExpr(recv.X) {
		return token.NoPos, false
	}
	return recv.Pos(), true
}

// loopHasEscape reports whether the loop body contains a statement that
// can leave the loop (return, break, goto) outside nested functions.
func loopHasEscape(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
			return false
		case *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}

// loopHasSelect reports whether the loop body contains a select (which
// TimerLoopLint leaves to the transient-select analysis).
func loopHasSelect(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}
