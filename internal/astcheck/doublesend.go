package astcheck

import (
	"go/ast"
	"go/token"
)

// DoubleSendLint flags the Listing-5 defect: an if block whose body ends
// with a send on a channel and no terminating statement (return, break,
// continue, goto, panic), followed on the fall-through path by another
// send to the same channel. When the receiver accepts only one message,
// the second send partially deadlocks.
func DoubleSendLint(f *File) []Finding {
	var out []Finding
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			ifStmt, ok := stmt.(*ast.IfStmt)
			if !ok || ifStmt.Else != nil {
				continue
			}
			ch, sendPos, ok := trailingSend(ifStmt.Body)
			if !ok {
				continue
			}
			// Scan the fall-through path for another send to ch.
			for _, later := range block.List[i+1:] {
				if stopsFlow(later) {
					break
				}
				if laterCh, _, ok := sendIn(later); ok && laterCh == ch {
					out = append(out, Finding{
						Check: "doublesend",
						Pos:   f.Fset.Position(sendPos),
						Message: "conditional send on '" + ch +
							"' falls through to a second send; add a return after the first",
					})
					break
				}
			}
		}
		return true
	})
	return out
}

// trailingSend reports the channel of a send statement that ends the
// block with no terminator after it.
func trailingSend(body *ast.BlockStmt) (ch string, pos token.Pos, ok bool) {
	if len(body.List) == 0 {
		return "", 0, false
	}
	last := body.List[len(body.List)-1]
	send, ok := last.(*ast.SendStmt)
	if !ok {
		return "", 0, false
	}
	name, ok := identName(send.Chan)
	if !ok {
		return "", 0, false
	}
	return name, send.Pos(), true
}

// sendIn extracts a send statement's channel if stmt is a plain send.
func sendIn(stmt ast.Stmt) (ch string, pos token.Pos, ok bool) {
	send, isSend := stmt.(*ast.SendStmt)
	if !isSend {
		return "", 0, false
	}
	name, ok := identName(send.Chan)
	if !ok {
		return "", 0, false
	}
	return name, send.Pos(), true
}

// stopsFlow reports whether the statement unconditionally leaves the
// enclosing block, ending the fall-through path the checker follows.
func stopsFlow(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "panic" {
				return true
			}
		}
	}
	return false
}
