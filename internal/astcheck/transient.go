package astcheck

import (
	"go/ast"
)

// TransientSelects finds select statements whose every blocking arm
// listens on a channel that is transiently blocking by construction:
// time.Tick(...), time.After(...), timer/ticker .C fields, and
// context Done() channels. A goroutine parked at such a select will
// eventually wake, so LEAKPROF must not report it (criterion 2,
// Section V-A).
//
// The analysis is deliberately conservative: one arm on an ordinary
// channel disqualifies the select.
func TransientSelects(f *File) []Finding {
	var out []Finding
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		arms := 0
		transient := true
		for _, clause := range sel.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if comm.Comm == nil {
				// A default arm makes the select non-blocking, hence
				// trivially transient; it does not disqualify.
				continue
			}
			arms++
			if !transientComm(comm.Comm) {
				transient = false
			}
		}
		if arms > 0 && transient {
			out = append(out, Finding{
				Check:   "transient-select",
				Pos:     f.Fset.Position(sel.Pos()),
				Message: "select blocks only on transient channels (timers/context); never a leak",
			})
		}
		return true
	})
	return out
}

// transientComm reports whether a select communication operation is on a
// provably transient channel.
func transientComm(stmt ast.Stmt) bool {
	var ch ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if recv, ok := s.X.(*ast.UnaryExpr); ok {
			ch = recv.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if recv, ok := s.Rhs[0].(*ast.UnaryExpr); ok {
				ch = recv.X
			}
		}
	case *ast.SendStmt:
		// A send arm can block indefinitely regardless of the channel's
		// producer; never transient.
		return false
	}
	if ch == nil {
		return false
	}
	return transientChannelExpr(ch)
}

// transientChannelExpr recognises the channel expressions the paper's
// filter lists: time.Tick(...), time.After(...), <timer>.C, ctx.Done().
func transientChannelExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		switch sel.Sel.Name {
		case "Done":
			// ctx.Done(), stopper.Done(): a done channel is closed by
			// the owner; the paper treats context.Done arms as the
			// canonical transient case.
			return true
		case "Tick", "After":
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "time" {
				return true
			}
		}
	case *ast.SelectorExpr:
		// t.C on a time.Timer/time.Ticker. Without type information we
		// accept any ".C" selector: a heuristic, but one biased toward
		// false negatives only when a user names an ordinary channel
		// field C.
		return x.Sel.Name == "C"
	}
	return false
}

// TransientLocations returns the set of "file:line" locations of
// transient selects, for joining against LEAKPROF profile groups.
func TransientLocations(files []*File) map[string]bool {
	out := map[string]bool{}
	for _, f := range files {
		for _, finding := range TransientSelects(f) {
			out[finding.Location()] = true
		}
	}
	return out
}
