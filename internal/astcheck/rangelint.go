package astcheck

import (
	"go/ast"
	"go/token"
)

// RangeLint implements the range linter the paper's Section VIII
// describes as already designed: it reports local, lexically scoped
// channels used with the range construct that may never be closed — the
// Listing-3 producer/consumer defect where the missing close(ch) blocks
// every consumer forever.
//
// Scope discipline: the linter only reasons about channels that are (a)
// created by a make(chan ...) assignment to a simple identifier inside a
// function, and (b) never escape that function other than into goroutine
// closures launched within it. Channels passed to calls or returned are
// skipped — another function might close them.
func RangeLint(f *File) []Finding {
	var out []Finding
	for _, decl := range f.Ast.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		out = append(out, rangeLintFunc(f, fn)...)
	}
	return out
}

type chanInfo struct {
	makePos  token.Pos
	ranged   []token.Pos
	closed   bool
	escapes  bool
	reassign bool
}

func rangeLintFunc(f *File, fn *ast.FuncDecl) []Finding {
	chans := map[string]*chanInfo{}

	// Pass 1: find local channel creations: `ch := make(chan T[, n])`.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !isMakeChan(rhs) || i >= len(assign.Lhs) {
				continue
			}
			ident, ok := assign.Lhs[i].(*ast.Ident)
			if !ok || ident.Name == "_" {
				continue
			}
			if assign.Tok == token.DEFINE {
				chans[ident.Name] = &chanInfo{makePos: rhs.Pos()}
			} else if info := chans[ident.Name]; info != nil {
				// Reassignment muddies identity; drop the channel.
				info.reassign = true
			}
		}
		return true
	})
	if len(chans) == 0 {
		return nil
	}

	// Pass 2: classify every use of each tracked identifier.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if name, ok := identName(x.X); ok {
				if info := chans[name]; info != nil {
					info.ranged = append(info.ranged, x.Range)
				}
			}
		case *ast.CallExpr:
			if fun, ok := x.Fun.(*ast.Ident); ok && fun.Name == "close" && len(x.Args) == 1 {
				if name, ok := identName(x.Args[0]); ok {
					if info := chans[name]; info != nil {
						info.closed = true
					}
				}
				return true
			}
			// Any other call receiving the channel may close it.
			for _, arg := range x.Args {
				if name, ok := identName(arg); ok {
					if info := chans[name]; info != nil {
						info.escapes = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if name, ok := identName(res); ok {
					if info := chans[name]; info != nil {
						info.escapes = true
					}
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if name, ok := identName(x.X); ok {
					if info := chans[name]; info != nil {
						info.escapes = true
					}
				}
			}
		case *ast.AssignStmt:
			// Assigning the channel to another variable or a field
			// lets it escape the lexical scope.
			for _, rhs := range x.Rhs {
				if name, ok := identName(rhs); ok {
					if info := chans[name]; info != nil {
						info.escapes = true
					}
				}
			}
		}
		return true
	})

	var out []Finding
	for name, info := range chans {
		if len(info.ranged) == 0 || info.closed || info.escapes || info.reassign {
			continue
		}
		out = append(out, Finding{
			Check: "rangelint",
			Pos:   f.Fset.Position(info.ranged[0]),
			Message: "range over lexically scoped channel '" + name +
				"' that is never closed; consumers block forever after the last send",
		})
	}
	return out
}

func isMakeChan(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "make" || len(call.Args) == 0 {
		return false
	}
	_, isChan := call.Args[0].(*ast.ChanType)
	return isChan
}

func identName(e ast.Expr) (string, bool) {
	ident, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	return ident.Name, true
}
