package astcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseSource("test.go", src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func checkNames(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Check)
	}
	return out
}

// ---- RangeLint ----

func TestRangeLintFlagsUnclosedChannel(t *testing.T) {
	src := `package p
func producerConsumer(items []int, workers int) {
	ch := make(chan int)
	for i := 0; i < workers; i++ {
		go func() {
			for item := range ch {
				_ = item
			}
		}()
	}
	for _, item := range items {
		ch <- item
	}
}
`
	fs := RangeLint(mustParse(t, src))
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if fs[0].Check != "rangelint" || !strings.Contains(fs[0].Message, "'ch'") {
		t.Errorf("finding = %+v", fs[0])
	}
	if fs[0].Pos.Line != 6 {
		t.Errorf("flagged line %d, want 6 (the range)", fs[0].Pos.Line)
	}
}

func TestRangeLintAcceptsClosedChannel(t *testing.T) {
	src := `package p
func ok(items []int) {
	ch := make(chan int)
	go func() {
		for item := range ch {
			_ = item
		}
	}()
	for _, item := range items {
		ch <- item
	}
	close(ch)
}
`
	if fs := RangeLint(mustParse(t, src)); len(fs) != 0 {
		t.Errorf("closed channel flagged: %v", fs)
	}
}

func TestRangeLintSkipsEscapingChannels(t *testing.T) {
	cases := map[string]string{
		"passed to call": `package p
func f() {
	ch := make(chan int)
	go drain(ch)
	for v := range ch { _ = v }
}
func drain(ch chan int) { close(ch) }
`,
		"returned": `package p
func f() chan int {
	ch := make(chan int)
	go func() { for v := range ch { _ = v } }()
	return ch
}
`,
		"assigned away": `package p
var global chan int
func f() {
	ch := make(chan int)
	global = ch
	for v := range ch { _ = v }
}
`,
		"address taken": `package p
func f() {
	ch := make(chan int)
	p := &ch
	_ = p
	for v := range ch { _ = v }
}
`,
	}
	for name, src := range cases {
		if fs := RangeLint(mustParse(t, src)); len(fs) != 0 {
			t.Errorf("%s: escaping channel flagged: %v", name, fs)
		}
	}
}

func TestRangeLintIgnoresNonChannelRanges(t *testing.T) {
	src := `package p
func f(items []int) {
	m := make(map[int]int)
	for k := range m { _ = k }
	for _, v := range items { _ = v }
}
`
	if fs := RangeLint(mustParse(t, src)); len(fs) != 0 {
		t.Errorf("non-channel range flagged: %v", fs)
	}
}

func TestRangeLintHandlesReassignment(t *testing.T) {
	src := `package p
func f() {
	ch := make(chan int)
	ch = make(chan int)
	for v := range ch { _ = v }
}
`
	if fs := RangeLint(mustParse(t, src)); len(fs) != 0 {
		t.Errorf("reassigned channel flagged (identity unclear): %v", fs)
	}
}

// ---- DoubleSendLint ----

func TestDoubleSendFlagsListing5(t *testing.T) {
	src := `package p
func sender(ch chan interface{}) {
	item, err := createItem()
	if err != nil {
		ch <- nil
	}
	ch <- item
}
func createItem() (interface{}, error) { return nil, nil }
`
	fs := DoubleSendLint(mustParse(t, src))
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if fs[0].Pos.Line != 5 {
		t.Errorf("flagged line %d, want 5 (the first send)", fs[0].Pos.Line)
	}
}

func TestDoubleSendAcceptsReturnAfterErrorSend(t *testing.T) {
	src := `package p
func sender(ch chan interface{}) {
	item, err := createItem()
	if err != nil {
		ch <- nil
		return
	}
	ch <- item
}
func createItem() (interface{}, error) { return nil, nil }
`
	if fs := DoubleSendLint(mustParse(t, src)); len(fs) != 0 {
		t.Errorf("correct code flagged: %v", fs)
	}
}

func TestDoubleSendIgnoresDifferentChannels(t *testing.T) {
	src := `package p
func f(a, b chan int) {
	if true {
		a <- 1
	}
	b <- 2
}
`
	if fs := DoubleSendLint(mustParse(t, src)); len(fs) != 0 {
		t.Errorf("different channels flagged: %v", fs)
	}
}

func TestDoubleSendIgnoresIfWithElse(t *testing.T) {
	src := `package p
func f(ch chan int) {
	if true {
		ch <- 1
	} else {
		return
	}
	ch <- 2
}
`
	// With an else branch the flow is not a simple fall-through; the
	// checker deliberately stays silent (precision over recall).
	if fs := DoubleSendLint(mustParse(t, src)); len(fs) != 0 {
		t.Errorf("if/else flagged: %v", fs)
	}
}

func TestDoubleSendStopsAtFlowBreak(t *testing.T) {
	src := `package p
func f(ch chan int) {
	if true {
		ch <- 1
	}
	return
	ch <- 2
}
`
	if fs := DoubleSendLint(mustParse(t, src)); len(fs) != 0 {
		t.Errorf("send after return flagged: %v", fs)
	}
}

// ---- TransientSelects ----

func TestTransientSelectDetection(t *testing.T) {
	src := `package p
import ("time"; "context")
func worker(ctx context.Context, data chan int, t *time.Timer) {
	// transient: both arms provably wake
	select {
	case <-time.After(time.Second):
	case <-ctx.Done():
	}
	// transient: ticker channel and Done
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	// NOT transient: one arm on an ordinary channel
	select {
	case <-data:
	case <-ctx.Done():
	}
	// NOT transient: send arm
	select {
	case data <- 1:
	case <-ctx.Done():
	}
}
`
	fs := TransientSelects(mustParse(t, src))
	if len(fs) != 2 {
		t.Fatalf("findings = %v", checkNames(fs))
	}
	if fs[0].Pos.Line != 5 || fs[1].Pos.Line != 10 {
		t.Errorf("flagged lines %d, %d; want 5, 10", fs[0].Pos.Line, fs[1].Pos.Line)
	}
}

func TestTransientSelectWithAssignArm(t *testing.T) {
	src := `package p
import "time"
func f() {
	select {
	case now := <-time.After(time.Second):
		_ = now
	}
}
`
	fs := TransientSelects(mustParse(t, src))
	if len(fs) != 1 {
		t.Errorf("assignment-form arm missed: %v", fs)
	}
}

func TestTransientLocations(t *testing.T) {
	src := `package p
import "time"
func f() {
	select {
	case <-time.Tick(time.Second):
	}
}
`
	f := mustParse(t, src)
	locs := TransientLocations([]*File{f})
	if !locs["test.go:4"] {
		t.Errorf("locations = %v, want test.go:4", locs)
	}
}

// ---- ParseDir / AnalyzeAll ----

func TestParseDirAndAnalyzeAll(t *testing.T) {
	dir := t.TempDir()
	good := `package a
func ok() {}
`
	leaky := `package a
func leak(items []int) {
	ch := make(chan int)
	go func() { for v := range ch { _ = v } }()
	for _, v := range items { ch <- v }
}
`
	broken := `package a func (`
	if err := os.WriteFile(filepath.Join(dir, "good.go"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "leaky.go"), []byte(leaky), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(broken), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "testdata"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "testdata", "skip.go"), []byte(leaky), 0o644); err != nil {
		t.Fatal(err)
	}

	files, err := ParseDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("parsed %d files, want 2 (broken skipped, testdata skipped)", len(files))
	}
	findings := AnalyzeAll(files)
	if len(findings) != 1 || findings[0].Check != "rangelint" {
		t.Errorf("findings = %v", findings)
	}
	if !strings.Contains(findings[0].String(), "rangelint") {
		t.Errorf("String() = %q", findings[0].String())
	}
}
