package metrics

import (
	"fmt"
	"strings"
	"time"
)

// The paper's figure parameterisations: concrete model instances whose
// sampled series reproduce the published shapes. The experiment harness
// asserts the headline ratios (9.2× RSS, 34% max CPU) on these series.

// Fig1Model parameterises the Fig-1 service: a leak that ramps the RSS to
// ~6 GiB against a ~650 MiB healthy baseline, redeployed every two days.
func Fig1Model() InstanceModel {
	return InstanceModel{
		BaseRSSBytes:      MiB(650),
		BytesPerGoroutine: 24 << 10, // 8 KiB stack + ~16 KiB reachable heap
		LeakPerHour:       5000,
		RedeployEvery:     48 * time.Hour,
		BaseCPU:           0.10,
		DiurnalAmplitude:  0.35,
		GCCPUPerGiB:       0.018,
	}
}

// Fig1Series samples seven days of RSS for instances with the fix deployed
// on day four (the paper's vertical marker).
func Fig1Series(origin time.Time) (before Series, after Series) {
	m := Fig1Model()
	window, step := 7*24*time.Hour, time.Hour
	// "Before" never fixes; "after" fixes at day 4.
	before = m.SampleRSS(window, step, -1, origin)
	after = m.SampleRSS(window, step, 4*24*time.Hour, origin)
	return before, after
}

// Fig1Reduction returns the headline ratio: peak RSS while leaking versus
// steady-state RSS after the fix (the paper reports ≈9.2×).
func Fig1Reduction() float64 {
	m := Fig1Model()
	peak := m.RSS(47*time.Hour, -1) // just before a redeploy clears it
	healthy := m.BaseRSSBytes
	return peak / healthy
}

// Fig2Model parameterises the Fig-2 CPU plot. The paper reports pre-fix
// avg 12.29% / max 26.8%, post-fix avg 10.36% (−16.5%) / max 17.7% (−34%).
func Fig2Model() InstanceModel {
	m := Fig1Model()
	m.BaseCPU = 0.103
	m.DiurnalAmplitude = 0.42
	m.GCCPUPerGiB = 0.022
	// The leak activates mid-window (outage-triggered), concentrating
	// the GC cost near the peak: the max CPU cut (−34%) therefore
	// exceeds the mean cut (−16.5%), as in the paper.
	m.LeakActivationDelay = 24 * time.Hour
	m.LeakPerHour = 10000
	return m
}

// Fig2Series samples seven days of CPU with and without the day-4 fix.
func Fig2Series(origin time.Time) (before Series, after Series) {
	m := Fig2Model()
	window, step := 7*24*time.Hour, 15*time.Minute
	return m.SampleCPU(window, step, -1, origin), m.SampleCPU(window, step, 4*24*time.Hour, origin)
}

// Fig2Impact summarises the before/after CPU statistics over the final two
// days of the window (steady state after the fix).
func Fig2Impact(origin time.Time) (maxBefore, maxAfter, meanBefore, meanAfter float64) {
	before, after := Fig2Series(origin)
	tail := func(s Series) Series { return s[len(s)*5/7:] }
	tb, ta := tail(before), tail(after)
	return tb.Max(), ta.Max(), tb.Mean(), ta.Mean()
}

// ServiceImpact is one row of Table V.
type ServiceImpact struct {
	Name      string
	Instances int
	// PeakBeforeGB / PeakAfterGB are service-wide peak memory.
	PeakBeforeGB float64
	PeakAfterGB  float64
	// CapBeforeGB / CapAfterGB are per-instance provisioned capacity; a
	// zero CapAfterGB means owners kept the allocation.
	CapBeforeGB float64
	CapAfterGB  float64
}

// SavedPct is the service-wide peak memory saving.
func (s ServiceImpact) SavedPct() float64 {
	if s.PeakBeforeGB == 0 {
		return 0
	}
	return 100 * (s.PeakBeforeGB - s.PeakAfterGB) / s.PeakBeforeGB
}

// CapSavedPct is the per-instance capacity saving (0 when unchanged).
func (s ServiceImpact) CapSavedPct() float64 {
	if s.CapAfterGB == 0 || s.CapBeforeGB == 0 {
		return 0
	}
	return 100 * (s.CapBeforeGB - s.CapAfterGB) / s.CapBeforeGB
}

// TableVConfig returns the thirteen services of Table V with the paper's
// instance counts and provisioning, expressed as model parameters: the
// healthy baseline equals the post-fix peak and the leak accounts for the
// difference. The simulation then re-derives the impact through the model
// rather than echoing the numbers.
func TableVConfig() []ServiceImpact {
	return []ServiceImpact{
		{"S1", 5854, 28000, 13000, 4, 0},
		{"S2", 612, 310, 290, 5, 4},
		{"S3", 199, 317, 182, 4, 3},
		{"S4", 120, 116, 72, 6, 4},
		{"S5", 72, 650, 347, 17, 0},
		{"S6", 66, 112, 36, 4, 3},
		{"S7", 64, 83, 63, 43.5, 3},
		{"S8", 19, 35, 29, 8, 6},
		{"S9", 18, 30, 6.5, 32, 8},
		{"S10", 10, 19, 15, 4, 3},
		{"S11", 9, 4.5, 3.3, 8, 0},
		{"S12", 6, 9.6, 4.2, 4, 0},
		{"S13", 6, 7.5, 2, 4, 3},
	}
}

// ModelForService converts a Table V row into an instance model: the
// healthy per-instance baseline is peakAfter/instances and the leak rate
// is sized so the pre-fix peak reproduces peakBefore at the deploy horizon.
func ModelForService(s ServiceImpact, horizon time.Duration) InstanceModel {
	basePer := GiB(s.PeakAfterGB) / float64(s.Instances)
	leakPer := GiB(s.PeakBeforeGB-s.PeakAfterGB) / float64(s.Instances)
	bytesPerG := float64(24 << 10)
	rate := leakPer / bytesPerG / horizon.Hours()
	return InstanceModel{
		BaseRSSBytes:      basePer,
		BytesPerGoroutine: bytesPerG,
		LeakPerHour:       rate,
		BaseCPU:           0.1,
		DiurnalAmplitude:  0.3,
		GCCPUPerGiB:       0.02,
	}
}

// SimulateTableV re-derives each row's saving through the model: peak
// before the fix at the horizon versus steady state after.
func SimulateTableV(horizon time.Duration) []ServiceImpact {
	rows := TableVConfig()
	out := make([]ServiceImpact, len(rows))
	for i, row := range rows {
		m := ModelForService(row, horizon)
		peakBefore := m.RSS(horizon, -1) * float64(row.Instances)
		peakAfter := m.RSS(horizon, 0) * float64(row.Instances)
		out[i] = row
		out[i].PeakBeforeGB = peakBefore / GiB(1)
		out[i].PeakAfterGB = peakAfter / GiB(1)
	}
	return out
}

// FormatTableV renders rows in the paper's Table V layout.
func FormatTableV(rows []ServiceImpact) string {
	var b strings.Builder
	b.WriteString("Service  Instances  PeakBefore(GB)  PeakAfter(GB)  Saved   Cap before->after\n")
	for _, r := range rows {
		cap := fmt.Sprintf("%.1f -> kept", r.CapBeforeGB)
		if r.CapAfterGB > 0 {
			cap = fmt.Sprintf("%.1f -> %.1f (%.0f%%)", r.CapBeforeGB, r.CapAfterGB, r.CapSavedPct())
		}
		fmt.Fprintf(&b, "%-8s %9d %15.1f %14.1f %5.0f%%   %s\n",
			r.Name, r.Instances, r.PeakBeforeGB, r.PeakAfterGB, r.SavedPct(), cap)
	}
	return b.String()
}
