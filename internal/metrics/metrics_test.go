package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var origin = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func TestClock(t *testing.T) {
	c := NewClock(origin)
	if !c.Now().Equal(origin) {
		t.Fatal("origin mismatch")
	}
	c.Advance(90 * time.Minute)
	if got := c.Now().Sub(origin); got != 90*time.Minute {
		t.Errorf("advanced %v", got)
	}
}

func TestLeakAccumulationAndRedeploy(t *testing.T) {
	m := InstanceModel{LeakPerHour: 100, RedeployEvery: 48 * time.Hour}
	if got := m.LeakedGoroutines(0, -1); got != 0 {
		t.Errorf("t=0 leaked = %f", got)
	}
	if got := m.LeakedGoroutines(10*time.Hour, -1); got != 1000 {
		t.Errorf("10h leaked = %f, want 1000", got)
	}
	// Redeploy at 48h resets the backlog.
	if got := m.LeakedGoroutines(49*time.Hour, -1); got != 100 {
		t.Errorf("49h leaked = %f, want 100 (post-redeploy)", got)
	}
	// Without redeploys growth is unbounded.
	m2 := InstanceModel{LeakPerHour: 100}
	if got := m2.LeakedGoroutines(100*time.Hour, -1); got != 10000 {
		t.Errorf("no-redeploy leaked = %f", got)
	}
}

func TestFixClearsBacklogAtNextDeploy(t *testing.T) {
	m := InstanceModel{LeakPerHour: 100, RedeployEvery: 48 * time.Hour}
	fixAt := 24 * time.Hour
	// Before the fix: growing.
	if got := m.LeakedGoroutines(12*time.Hour, fixAt); got != 1200 {
		t.Errorf("12h = %f", got)
	}
	// After the fix but before the next deploy: residue stays resident.
	got := m.LeakedGoroutines(30*time.Hour, fixAt)
	if got != 2400 { // leaked during [0, 24h) of this deploy window
		t.Errorf("30h = %f, want 2400", got)
	}
	// After the next deploy: clean.
	if got := m.LeakedGoroutines(50*time.Hour, fixAt); got != 0 {
		t.Errorf("50h = %f, want 0", got)
	}
}

func TestLeakMonotoneWithinDeployWindow(t *testing.T) {
	m := InstanceModel{LeakPerHour: 50, RedeployEvery: 24 * time.Hour}
	f := func(h1, h2 uint8) bool {
		a := time.Duration(h1%24) * time.Hour
		b := time.Duration(h2%24) * time.Hour
		if a > b {
			a, b = b, a
		}
		return m.LeakedGoroutines(a, -1) <= m.LeakedGoroutines(b, -1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRSSComposition(t *testing.T) {
	m := InstanceModel{BaseRSSBytes: MiB(100), BytesPerGoroutine: 1 << 10, LeakPerHour: 1024}
	want := MiB(100) + 1024*1024*10
	if got := m.RSS(10*time.Hour, -1); math.Abs(got-want) > 1 {
		t.Errorf("RSS = %f, want %f", got, want)
	}
}

func TestCPUDiurnalAndGCLoad(t *testing.T) {
	m := InstanceModel{BaseCPU: 0.1, DiurnalAmplitude: 0.5, GCCPUPerGiB: 0.02,
		BytesPerGoroutine: GiB(1), LeakPerHour: 1}
	// At 6h the sinusoid peaks: base*1.5 plus 6 GiB leaked * 0.02.
	got := m.CPU(6*time.Hour, -1)
	want := 0.1*1.5 + 6*0.02
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CPU = %f, want %f", got, want)
	}
	// With the leak fixed at t=0, only the diurnal baseline remains.
	if got := m.CPU(6*time.Hour, 0); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("fixed CPU = %f, want 0.15", got)
	}
}

func TestSeriesStats(t *testing.T) {
	s := Series{{V: 1}, {V: 5}, {V: 3}}
	if s.Max() != 5 || s.Mean() != 3 {
		t.Errorf("max=%f mean=%f", s.Max(), s.Mean())
	}
	var empty Series
	if empty.Max() != 0 || empty.Mean() != 0 {
		t.Error("empty series stats should be 0")
	}
}

func TestFig1ReproducesReduction(t *testing.T) {
	r := Fig1Reduction()
	// The paper reports ≈9.2×; the model must land in that
	// neighbourhood.
	if r < 8 || r < 9 && r > 10 || r > 10.5 {
		if r < 8 || r > 10.5 {
			t.Errorf("Fig1 reduction = %.2fx, want ~9.2x", r)
		}
	}
	before, after := Fig1Series(origin)
	if len(before) != len(after) || len(before) == 0 {
		t.Fatal("series malformed")
	}
	// After the fix the tail settles at the healthy baseline.
	tail := after[len(after)-1].V
	if math.Abs(tail-MiB(650)) > MiB(1) {
		t.Errorf("post-fix steady state = %.0f MiB, want 650", tail/MiB(1))
	}
	// Before the fix, the peak is far above baseline.
	if before.Max() < GiB(5) {
		t.Errorf("pre-fix peak = %.2f GiB, want >= 5", before.Max()/GiB(1))
	}
}

func TestFig2ReproducesCPUShape(t *testing.T) {
	maxB, maxA, meanB, meanA := Fig2Impact(origin)
	if maxA >= maxB || meanA >= meanB {
		t.Fatalf("fix did not reduce CPU: max %f->%f mean %f->%f", maxB, maxA, meanB, meanA)
	}
	maxCut := 100 * (maxB - maxA) / maxB
	meanCut := 100 * (meanB - meanA) / meanB
	// Paper: max −34%, mean −16.5%. Accept the neighbourhood.
	if maxCut < 20 || maxCut > 50 {
		t.Errorf("max CPU cut = %.1f%%, want ~34%%", maxCut)
	}
	if meanCut < 8 || meanCut > 30 {
		t.Errorf("mean CPU cut = %.1f%%, want ~16.5%%", meanCut)
	}
	if meanCut >= maxCut {
		t.Errorf("mean cut %.1f%% should be below max cut %.1f%%", meanCut, maxCut)
	}
}

func TestTableVSimulation(t *testing.T) {
	horizon := 72 * time.Hour
	rows := SimulateTableV(horizon)
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	cfg := TableVConfig()
	for i, r := range rows {
		if r.SavedPct() <= 0 {
			t.Errorf("%s: no saving", r.Name)
		}
		// The simulated saving must match the paper's within a few
		// points (the model is exact at the horizon by construction;
		// this asserts the plumbing).
		want := cfg[i].SavedPct()
		if math.Abs(r.SavedPct()-want) > 3 {
			t.Errorf("%s: saving %.1f%%, paper %.1f%%", r.Name, r.SavedPct(), want)
		}
	}
	// S9 has the deepest service-wide saving (78%) among larger cuts.
	var s9 ServiceImpact
	for _, r := range rows {
		if r.Name == "S9" {
			s9 = r
		}
	}
	if s9.SavedPct() < 70 {
		t.Errorf("S9 saving = %.1f%%, want ~78%%", s9.SavedPct())
	}
	out := FormatTableV(rows)
	if !contains(out, "S1") || !contains(out, "kept") {
		t.Errorf("FormatTableV output:\n%s", out)
	}
}

func TestCapSavedPct(t *testing.T) {
	s := ServiceImpact{CapBeforeGB: 4, CapAfterGB: 3}
	if got := s.CapSavedPct(); math.Abs(got-25) > 1e-9 {
		t.Errorf("cap saved = %f", got)
	}
	s = ServiceImpact{CapBeforeGB: 4}
	if s.CapSavedPct() != 0 {
		t.Error("kept capacity should report 0%")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
