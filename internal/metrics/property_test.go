package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

// Model invariants that must hold for any parameterisation the
// simulators might construct.
func TestModelInvariants(t *testing.T) {
	f := func(leakRate uint16, hours uint8, redeployHrs uint8, fixHrs uint8) bool {
		m := InstanceModel{
			BaseRSSBytes:      MiB(100),
			BytesPerGoroutine: 8 << 10,
			LeakPerHour:       float64(leakRate % 5000),
			BaseCPU:           0.1,
			DiurnalAmplitude:  0.4,
			GCCPUPerGiB:       0.02,
		}
		if redeployHrs > 0 {
			m.RedeployEvery = time.Duration(redeployHrs) * time.Hour
		}
		elapsed := time.Duration(hours) * time.Hour
		fixAfter := time.Duration(fixHrs) * time.Hour

		leaked := m.LeakedGoroutines(elapsed, fixAfter)
		leakedNoFix := m.LeakedGoroutines(elapsed, -1)
		// Leaked counts are non-negative, and fixing never increases
		// the backlog.
		if leaked < 0 || leaked > leakedNoFix {
			return false
		}
		// RSS never drops below the healthy baseline.
		if m.RSS(elapsed, fixAfter) < m.BaseRSSBytes {
			return false
		}
		// CPU stays positive (diurnal amplitude < 1).
		if m.CPU(elapsed, fixAfter) <= 0 {
			return false
		}
		// Within a deploy window the leak never exceeds rate × window.
		if m.RedeployEvery > 0 && leakedNoFix > m.LeakPerHour*m.RedeployEvery.Hours() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSeriesShape(t *testing.T) {
	m := Fig1Model()
	s := m.SampleRSS(48*time.Hour, time.Hour, -1, time.Unix(0, 0))
	if len(s) != 49 {
		t.Fatalf("samples = %d, want 49", len(s))
	}
	for i := 1; i < len(s); i++ {
		if !s[i].T.After(s[i-1].T) {
			t.Fatal("timestamps not strictly increasing")
		}
	}
	leaked := m.SampleLeaked(10*time.Hour, time.Hour, -1, time.Unix(0, 0))
	if leaked[0].V != 0 {
		t.Errorf("leak at t=0 is %f", leaked[0].V)
	}
	if leaked[len(leaked)-1].V != m.LeakPerHour*10 {
		t.Errorf("leak at 10h = %f", leaked[len(leaked)-1].V)
	}
}
