// Package metrics models the production resource telemetry the paper's
// figures report: resident set size (Fig 1), CPU utilization (Fig 2),
// blocked-goroutine footprints (Fig 6) and per-service memory impact
// (Table V).
//
// The model is first-principles rather than curve-fitted: a partially
// deadlocked goroutine pins its stack and every heap object reachable
// from it (the paper's Section II), so
//
//	RSS(t) = base + leaked(t) × bytesPerGoroutine
//
// and the garbage collector must scan that pinned memory on every cycle,
// so
//
//	CPU(t) = baseline(t) + gcFactor × leakedGiB(t)
//
// with a diurnal modulation on the baseline matching the crests and
// troughs visible in the paper's plots. Deploys reset leaked goroutines
// (services "get redeployed every few days ... eliding the leak"), which
// produces the sawtooth ramps of Fig 6.
//
// All time is simulated; nothing here sleeps.
package metrics

import (
	"math"
	"time"
)

// Clock is a deterministic simulated clock.
type Clock struct {
	now time.Time
}

// NewClock starts a clock at the given origin.
func NewClock(origin time.Time) *Clock { return &Clock{now: origin} }

// Now returns the current simulated time.
func (c *Clock) Now() time.Time { return c.now }

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) { c.now = c.now.Add(d) }

// Point is one time-series sample.
type Point struct {
	T time.Time
	V float64
}

// Series is an ordered time series.
type Series []Point

// Max returns the largest value, or 0 for an empty series.
func (s Series) Max() float64 {
	max := 0.0
	for _, p := range s {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// Mean returns the average value, or 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s {
		sum += p.V
	}
	return sum / float64(len(s))
}

// InstanceModel parameterises one service instance's resource behaviour.
type InstanceModel struct {
	// BaseRSSBytes is the healthy working set.
	BaseRSSBytes float64
	// BytesPerGoroutine is the stack plus reachable heap pinned by each
	// leaked goroutine (the paper's Listing-1 discussion: stack, channel,
	// and captured objects).
	BytesPerGoroutine float64
	// LeakPerHour is the rate at which goroutines leak while the defect
	// is live.
	LeakPerHour float64
	// LeakActivationDelay models the paper's observation that "unusual
	// circumstances, like outages, tend to activate partial deadlocks":
	// within each deploy window the leak only starts flowing after this
	// delay. Zero means the leak is active from deploy time.
	LeakActivationDelay time.Duration
	// RedeployEvery resets leaked goroutines (deploy cadence); zero
	// means never.
	RedeployEvery time.Duration

	// BaseCPU is the healthy mean CPU utilization (fraction of a core).
	BaseCPU float64
	// DiurnalAmplitude modulates BaseCPU sinusoidally over 24h (0..1).
	DiurnalAmplitude float64
	// GCCPUPerGiB is the extra CPU fraction consumed per GiB of leaked,
	// GC-scanned memory.
	GCCPUPerGiB float64
}

// LeakedGoroutines returns the number of leaked goroutines at elapsed time
// since the leak went live. fixAfter bounds leak growth: past that point
// the defect is fixed and the next redeploy clears the backlog; a negative
// fixAfter means the leak is never fixed.
func (m *InstanceModel) LeakedGoroutines(elapsed time.Duration, fixAfter time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	fixed := fixAfter >= 0 && elapsed >= fixAfter
	var sinceDeploy, leakWindow time.Duration
	if m.RedeployEvery > 0 {
		cycles := int64(elapsed / m.RedeployEvery)
		sinceDeploy = elapsed - time.Duration(cycles)*m.RedeployEvery
	} else {
		sinceDeploy = elapsed
	}
	if fixed {
		// After the fix, a deploy boundary clears the backlog; if the
		// fix happened in the current deploy window, the pre-fix
		// residue is still resident until the next deploy.
		deployStart := elapsed - sinceDeploy
		if deployStart >= fixAfter {
			return 0
		}
		leakWindow = fixAfter - deployStart
	} else {
		leakWindow = sinceDeploy
	}
	leakWindow -= m.LeakActivationDelay
	if leakWindow < 0 {
		leakWindow = 0
	}
	return m.LeakPerHour * leakWindow.Hours()
}

// RSS returns resident set size in bytes at elapsed time.
func (m *InstanceModel) RSS(elapsed, fixAfter time.Duration) float64 {
	return m.BaseRSSBytes + m.LeakedGoroutines(elapsed, fixAfter)*m.BytesPerGoroutine
}

// CPU returns CPU utilization (fraction of a core) at elapsed time.
func (m *InstanceModel) CPU(elapsed, fixAfter time.Duration) float64 {
	diurnal := 1 + m.DiurnalAmplitude*math.Sin(2*math.Pi*elapsed.Hours()/24)
	leakGiB := m.LeakedGoroutines(elapsed, fixAfter) * m.BytesPerGoroutine / (1 << 30)
	return m.BaseCPU*diurnal + m.GCCPUPerGiB*leakGiB
}

// SampleRSS produces an RSS series over the window with the given step.
func (m *InstanceModel) SampleRSS(window, step, fixAfter time.Duration, origin time.Time) Series {
	return sample(window, step, origin, func(e time.Duration) float64 { return m.RSS(e, fixAfter) })
}

// SampleCPU produces a CPU series over the window with the given step.
func (m *InstanceModel) SampleCPU(window, step, fixAfter time.Duration, origin time.Time) Series {
	return sample(window, step, origin, func(e time.Duration) float64 { return m.CPU(e, fixAfter) })
}

// SampleLeaked produces a leaked-goroutine-count series.
func (m *InstanceModel) SampleLeaked(window, step, fixAfter time.Duration, origin time.Time) Series {
	return sample(window, step, origin, func(e time.Duration) float64 {
		return m.LeakedGoroutines(e, fixAfter)
	})
}

func sample(window, step time.Duration, origin time.Time, f func(time.Duration) float64) Series {
	var s Series
	for e := time.Duration(0); e <= window; e += step {
		s = append(s, Point{T: origin.Add(e), V: f(e)})
	}
	return s
}

// GiB converts gibibytes to bytes.
func GiB(g float64) float64 { return g * (1 << 30) }

// MiB converts mebibytes to bytes.
func MiB(mb float64) float64 { return mb * (1 << 20) }
