// Package frame holds the on-disk framing and binary-body primitives the
// leakprof journal introduced and every other persisted format in the
// repo now shares: the durable state journal's segment frames, the
// distributed sweep plane's shard-report wire format, and the static-
// analysis findings index.
//
// A frame is a 4-byte big-endian payload length followed by a 4-byte
// CRC-32 (IEEE) of the payload, then the payload itself — enough to
// detect a torn append (a crash mid-write) or a bit-flipped record
// before any decoder runs. Read distinguishes the two: a damaged frame
// at the very end of its input is torn (recoverable by truncation),
// while a damaged frame with data following it is corruption a caller
// must refuse to silently drop.
//
// The body primitives are the binary-codec building blocks: varints
// (zigzag for signed), 8-byte little-endian IEEE floats, presence-byte
// timestamps (so the zero time survives a round trip), and a
// deduplicating string table serialized ahead of the sections that
// reference it. Reader walks such a body with bounds checking: corrupt
// input (which the CRC should have caught, but defense costs little)
// must produce an error, never a panic or an absurd allocation.
package frame

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// HeaderSize is the per-frame framing overhead: a 4-byte big-endian
// payload length followed by a 4-byte CRC-32 (IEEE) of the payload.
const HeaderSize = 8

// MaxPayload bounds one frame's payload; a length prefix beyond it is
// treated as corruption rather than an allocation request.
const MaxPayload = 1 << 30

// ErrTorn marks a frame consistent with a crash mid-append: it stops at
// the end of the input, so a recovering reader may truncate it away.
var ErrTorn = errors.New("torn journal frame")

// ErrCorrupt marks a frame that fails its checksum while complete data
// follows it — bit rot, not a torn tail — which a reader must surface
// rather than silently truncate.
var ErrCorrupt = errors.New("corrupt journal frame")

// ErrTruncated reports a binary body that ended mid-field.
var ErrTruncated = errors.New("frame: truncated binary record")

// New renders payload as one framed, checksummed byte slice.
func New(payload []byte) []byte {
	out := make([]byte, HeaderSize+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[HeaderSize:], payload)
	return out
}

// Write frames payload and writes it to w in two writes (header, body).
func Write(w io.Writer, payload []byte) error {
	var header [HeaderSize]byte
	binary.BigEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Read decodes one frame from br, with remaining the bytes left in the
// input from the frame's start. It returns (payload, total frame length,
// error): io.EOF means a clean end, ErrTorn a frame that stops at
// end-of-file (a crash mid-append), and ErrCorrupt a checksum failure
// with data following it (bit rot, not a torn tail). A frame whose
// claimed length extends past the end of the input is torn by
// construction, so no allocation is made for it — a corrupt length
// prefix must not become a gigabyte allocation during recovery.
func Read(br *bufio.Reader, remaining int64) ([]byte, int64, error) {
	var header [HeaderSize]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, ErrTorn
		}
		return nil, 0, err
	}
	length := binary.BigEndian.Uint32(header[0:4])
	sum := binary.BigEndian.Uint32(header[4:8])
	frameLen := HeaderSize + int64(length)
	if length == 0 || length > MaxPayload {
		return nil, 0, fmt.Errorf("%w: implausible frame length %d", ErrTorn, length)
	}
	if frameLen > remaining {
		return nil, 0, fmt.Errorf("%w: frame of %d bytes extends past end of segment", ErrTorn, frameLen)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, ErrTorn
		}
		return nil, 0, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		if frameLen == remaining {
			// The damaged frame is the input's last: a torn append.
			return nil, 0, fmt.Errorf("%w: checksum mismatch on the tail frame", ErrTorn)
		}
		return nil, 0, fmt.Errorf("%w: checksum mismatch with %d bytes of journal following", ErrCorrupt, remaining-frameLen)
	}
	return payload, frameLen, nil
}

// StringTable deduplicates strings across one record: the service, op,
// and stack-key strings a large record repeats thousands of times are
// stored once and referenced by index.
type StringTable struct {
	index map[string]uint64
	strs  []string
}

// Ref returns the table index for s, interning it on first use.
func (t *StringTable) Ref(s string) uint64 {
	if i, ok := t.index[s]; ok {
		return i
	}
	if t.index == nil {
		t.index = make(map[string]uint64)
	}
	i := uint64(len(t.strs))
	t.index[s] = i
	t.strs = append(t.strs, s)
	return i
}

// AppendTo serializes the table (count, then length-prefixed strings).
// It must precede the sections that reference it so decoding is one pass.
func (t *StringTable) AppendTo(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(t.strs)))
	for _, s := range t.strs {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

// AppendTime appends a presence byte plus a zigzag varint of UnixNano,
// so the zero time survives a round trip.
func AppendTime(b []byte, at time.Time) []byte {
	if at.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	return binary.AppendVarint(b, at.UnixNano())
}

// AppendFloat appends the 8-byte little-endian IEEE bits of f.
func AppendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// Reader walks a binary body with bounds checking.
type Reader struct {
	b   []byte
	off int
}

// NewReader returns a Reader over body.
func NewReader(body []byte) *Reader { return &Reader{b: body} }

// Uvarint decodes one unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

// Varint decodes one zigzag varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

// Count decodes an element count, refusing counts that could not fit in
// the remaining bytes at elemMin bytes per element.
func (r *Reader) Count(elemMin int) (int, error) {
	v, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	// A count cannot exceed the bytes left to encode its elements.
	if max := len(r.b) - r.off; elemMin > 0 && v > uint64(max/elemMin)+1 {
		return 0, fmt.Errorf("frame: binary record claims %d elements with %d bytes left", v, max)
	}
	return int(v), nil
}

// Take returns the next n raw bytes.
func (r *Reader) Take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, ErrTruncated
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

// Float64 decodes an 8-byte little-endian IEEE float.
func (r *Reader) Float64() (float64, error) {
	raw, err := r.Take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(raw)), nil
}

// Time decodes a presence-byte timestamp written by AppendTime.
func (r *Reader) Time() (time.Time, error) {
	flag, err := r.Take(1)
	if err != nil {
		return time.Time{}, err
	}
	if flag[0] == 0 {
		return time.Time{}, nil
	}
	n, err := r.Varint()
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(0, n).UTC(), nil
}

// Str decodes a string-table reference against tbl.
func (r *Reader) Str(tbl []string) (string, error) {
	i, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if i >= uint64(len(tbl)) {
		return "", fmt.Errorf("frame: binary record references string %d of %d", i, len(tbl))
	}
	return tbl[i], nil
}

// StringTable decodes a serialized table (the AppendTo layout) from the
// reader's current position.
func (r *Reader) StringTable() ([]string, error) {
	n, err := r.Count(1)
	if err != nil {
		return nil, err
	}
	tbl := make([]string, n)
	for i := range tbl {
		length, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		raw, err := r.Take(int(length))
		if err != nil {
			return nil, err
		}
		tbl[i] = string(raw)
	}
	return tbl, nil
}
