package frame

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"time"
)

func readAll(t *testing.T, data []byte) ([][]byte, error) {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(data))
	remaining := int64(len(data))
	var payloads [][]byte
	for {
		payload, n, err := Read(br, remaining)
		if err == io.EOF {
			return payloads, nil
		}
		if err != nil {
			return payloads, err
		}
		payloads = append(payloads, payload)
		remaining -= n
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := [][]byte{[]byte("a"), bytes.Repeat([]byte{0xAB}, 4096), []byte("tail")}
	for _, p := range want {
		if err := Write(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	// New must produce the identical encoding Write streams.
	var manual []byte
	for _, p := range want {
		manual = append(manual, New(p)...)
	}
	if !bytes.Equal(manual, buf.Bytes()) {
		t.Fatal("New and Write disagree on the frame encoding")
	}
	got, err := readAll(t, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestFrameTornTail(t *testing.T) {
	full := New([]byte("complete"))
	next := New([]byte("the-next"))
	for cut := 1; cut < len(next); cut++ {
		torn := append(append([]byte{}, full...), next[:cut]...)
		got, err := readAll(t, torn)
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("cut=%d: err = %v, want ErrTorn", cut, err)
		}
		if len(got) != 1 {
			t.Fatalf("cut=%d: the complete frame before the tear must decode", cut)
		}
	}
}

func TestFrameCorruptMiddle(t *testing.T) {
	data := append(New([]byte("first")), New([]byte("second"))...)
	data[HeaderSize+2] ^= 0xFF // flip a payload bit in the first frame
	_, err := readAll(t, data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt for a damaged frame with data following", err)
	}
	// The same damage on the last frame is a torn append, not corruption.
	tail := New([]byte("only"))
	tail[HeaderSize] ^= 0xFF
	if _, err := readAll(t, tail); !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn for a damaged tail frame", err)
	}
}

func TestFrameImplausibleLengthDoesNotAllocate(t *testing.T) {
	header := make([]byte, HeaderSize)
	header[0], header[1], header[2], header[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := readAll(t, header); !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn for a length past MaxPayload", err)
	}
}

func TestBodyPrimitivesRoundTrip(t *testing.T) {
	at := time.Date(2026, 8, 7, 12, 0, 0, 42, time.UTC)
	var tbl StringTable
	refs := []uint64{tbl.Ref("svc"), tbl.Ref("op"), tbl.Ref("svc")}
	if refs[0] != refs[2] {
		t.Fatal("Ref did not deduplicate")
	}
	body := tbl.AppendTo(nil)
	for _, r := range refs {
		body = appendUvarint(body, r)
	}
	body = appendVarint(body, -7)
	body = AppendFloat(body, math.Pi)
	body = AppendTime(body, at)
	body = AppendTime(body, time.Time{})

	r := NewReader(body)
	strs, err := r.StringTable()
	if err != nil || len(strs) != 2 {
		t.Fatalf("StringTable: %v (%d strings)", err, len(strs))
	}
	for i, want := range []string{"svc", "op", "svc"} {
		got, err := r.Str(strs)
		if err != nil || got != want {
			t.Fatalf("ref %d: got %q err %v", i, got, err)
		}
	}
	if v, err := r.Varint(); err != nil || v != -7 {
		t.Fatalf("Varint: %d, %v", v, err)
	}
	if f, err := r.Float64(); err != nil || f != math.Pi {
		t.Fatalf("Float64: %v, %v", f, err)
	}
	if ts, err := r.Time(); err != nil || !ts.Equal(at) {
		t.Fatalf("Time: %v, %v", ts, err)
	}
	if ts, err := r.Time(); err != nil || !ts.IsZero() {
		t.Fatalf("zero Time did not survive: %v, %v", ts, err)
	}
}

func TestReaderRejectsCorruptBodies(t *testing.T) {
	// A truncated varint.
	if _, err := NewReader([]byte{0x80}).Uvarint(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Uvarint on a dangling continuation byte: %v", err)
	}
	// A count that cannot fit in the remaining bytes.
	body := appendUvarint(nil, 1<<20)
	if _, err := NewReader(body).Count(8); err == nil {
		t.Fatal("Count accepted an implausible element count")
	}
	// A string reference past the table.
	if _, err := NewReader(appendUvarint(nil, 9)).Str([]string{"only"}); err == nil {
		t.Fatal("Str accepted an out-of-range table reference")
	}
	// Take past the end.
	if _, err := NewReader([]byte{1, 2}).Take(3); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Take past end: %v", err)
	}
}

// appendUvarint/appendVarint mirror encoding/binary's helpers locally so
// the test exercises the exact byte layout Reader expects.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendVarint(b []byte, v int64) []byte {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return appendUvarint(b, uv)
}
