package frame

import "encoding/binary"

// Dict is a segment-scoped string dictionary: one cumulative table
// shared by every dictionary-referencing frame in a journal segment.
// Where StringTable re-encodes a record's strings into every frame,
// a Dict lets each frame carry only the strings the segment has not
// seen yet — steady-state delta frames that keep touching the same hot
// stack locations shrink to pure references.
//
// The growth protocol mirrors the on-disk layout exactly: a frame's
// serialized prefix lists the strings it appends, in first-encounter
// order, and those strings take the next consecutive indices after the
// dictionary's current length. A decoder that extends its replica with
// each frame's appends before resolving that frame's references stays
// in lockstep with the writer. Dict is not safe for concurrent use;
// the journal's single-writer lock covers it.
type Dict struct {
	index map[string]uint64
	strs  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{index: make(map[string]uint64)} }

// NewDictFrom returns a dictionary seeded with strs, in order.
// Duplicate seeds keep their first index, matching Extend.
func NewDictFrom(strs []string) *Dict {
	d := NewDict()
	d.Extend(strs)
	return d
}

// Len returns the number of strings in the dictionary.
func (d *Dict) Len() int { return len(d.strs) }

// Strings returns the dictionary's backing slice: index i holds string
// i. Callers must treat it as read-only; it aliases the live table so a
// decoder can resolve references without copying per frame.
func (d *Dict) Strings() []string { return d.strs }

// Lookup returns the index of s if the dictionary holds it.
func (d *Dict) Lookup(s string) (uint64, bool) {
	i, ok := d.index[s]
	return i, ok
}

// Extend appends strs to the dictionary in order, assigning consecutive
// indices. This is the decoder half of the growth protocol: apply a
// frame's appended-strings prefix before resolving its references. A
// string already present keeps its first index but still consumes the
// next slot, so writer and reader index assignment never diverge even
// for a frame that (wastefully) re-appends a known string.
func (d *Dict) Extend(strs []string) {
	for _, s := range strs {
		if _, ok := d.index[s]; !ok {
			d.index[s] = uint64(len(d.strs))
		}
		d.strs = append(d.strs, s)
	}
}

// DictTable is the per-frame write view over a segment Dict. Ref
// resolves strings against the dictionary, recording each miss as one
// of the frame's appended strings with its future cumulative index.
// The appends become durable in two steps: AppendTo serializes them
// into the frame, and Commit publishes them into the dictionary once
// the frame write succeeded. An abandoned table (failed write, frame
// re-encoded after a segment roll) is simply dropped, so the in-memory
// dictionary never references strings the on-disk segment does not
// declare.
type DictTable struct {
	dict  *Dict
	index map[string]uint64 // strings this frame appends, by future index
	added []string
}

// NewDictTable returns a write view over dict for one frame.
func NewDictTable(dict *Dict) *DictTable {
	return &DictTable{dict: dict, index: make(map[string]uint64)}
}

// Ref returns the cumulative dictionary index for s, scheduling s as
// one of this frame's appended strings if the dictionary lacks it.
func (t *DictTable) Ref(s string) uint64 {
	if i, ok := t.dict.Lookup(s); ok {
		return i
	}
	if i, ok := t.index[s]; ok {
		return i
	}
	i := uint64(t.dict.Len() + len(t.added))
	t.index[s] = i
	t.added = append(t.added, s)
	return i
}

// Appended returns how many strings this frame appends.
func (t *DictTable) Appended() int { return len(t.added) }

// AppendTo serializes the frame's appended strings (count, then
// length-prefixed strings — the StringTable layout). It must precede
// the sections that reference the dictionary so decoding is one pass.
func (t *DictTable) AppendTo(b []byte) []byte {
	b = appendStringList(b, t.added)
	return b
}

// Commit publishes the appended strings into the segment dictionary.
// Call it only after the frame holding them was written successfully.
func (t *DictTable) Commit() {
	t.dict.Extend(t.added)
	t.added = nil
	t.index = nil
}

// appendStringList writes count + length-prefixed strings, the shared
// serialization of StringTable.AppendTo and DictTable.AppendTo.
func appendStringList(b []byte, strs []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(strs)))
	for _, s := range strs {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}
