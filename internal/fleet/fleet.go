// Package fleet simulates a microservice platform of the kind LEAKPROF
// monitors in the paper: services with many instances, each exposing a
// goroutine-profile endpoint, some carrying injected leak defects whose
// blocked-goroutine populations grow over time.
//
// The simulator substitutes for Uber's ~2500 services / ~200K instances.
// Fidelity matters at the interface LEAKPROF sees — goroutine profiles —
// so instances synthesise dump records through the executable pattern
// library (identical state strings and frame shapes to real leaks,
// relocated to per-service source coordinates) rather than spawning
// millions of real goroutines. For end-to-end runs over HTTP, Serve
// stands up one real net/http server per instance with the same handler
// the production services mount.
//
// Time is discrete (days, matching LEAKPROF's collection cadence) and all
// randomness is seeded.
package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"repro/internal/gprofile"
	"repro/internal/patterns"
	"repro/internal/stack"
	"repro/leakprof"
)

// ServiceConfig describes one simulated service.
type ServiceConfig struct {
	// Name is the service name.
	Name string
	// Instances is the deployment size.
	Instances int
	// Pattern is the injected leak pattern; nil for a healthy service.
	Pattern *patterns.Pattern
	// LeakFile/LeakLine are the service-local source coordinates of the
	// blocking operation (the LEAKPROF grouping key).
	LeakFile string
	LeakLine int
	// LeakPerDay is the blocked-goroutine growth per affected instance
	// per day.
	LeakPerDay int
	// HotInstances is how many instances leak at HotLeakPerDay instead
	// (the paper's outage-activated concentration: a few instances show
	// huge clusters).
	HotInstances  int
	HotLeakPerDay int
	// LeakStartDay is the day the defect ships; FixDay is the day the
	// fix deploys (negative: never). Fixing clears the backlog at the
	// next deploy; deploys happen every DeployEveryDays (default 2).
	LeakStartDay    int
	FixDay          int
	DeployEveryDays int
	// BenignGoroutines is the healthy background population per
	// instance.
	BenignGoroutines int
	// Seed drives per-instance randomness.
	Seed int64
}

// Service is one simulated service.
type Service struct {
	Cfg       ServiceConfig
	instances []*Instance
}

// Instance is one simulated program instance.
type Instance struct {
	Service string
	Name    string
	hot     bool
	// blocked is atomic because chaos scenarios deploy mid-sweep: a
	// DeployAll clearing backlogs races benignly with concurrent
	// Stacks/snapshot reads, exactly as a real deploy races a sweep.
	blocked atomic.Int64
	benign  []*stack.Goroutine
	cfg     *ServiceConfig
}

// Blocked returns the instance's current blocked-goroutine count at the
// injected leak location.
func (in *Instance) Blocked() int { return int(in.blocked.Load()) }

// Stacks synthesises the instance's current goroutine population: the
// benign background plus the leaked cluster.
func (in *Instance) Stacks() []*stack.Goroutine {
	blocked := int(in.blocked.Load())
	out := make([]*stack.Goroutine, 0, len(in.benign)+blocked)
	out = append(out, in.benign...)
	if blocked > 0 && in.cfg.Pattern != nil {
		leaked := in.cfg.Pattern.Stacks(int64(1000+len(in.benign)), blocked)
		patterns.Relocate(leaked, in.cfg.LeakFile, in.cfg.LeakLine)
		out = append(out, leaked...)
	}
	return out
}

// Fleet is the whole simulated platform.
type Fleet struct {
	Services []*Service
	Day      int
	origin   time.Time

	// FetchLatency simulates the per-endpoint round trip a real sweep
	// pays to fetch one instance's profile: the in-process sources sleep
	// this long before emitting each snapshot. Zero (the default) keeps
	// tests instant; benchmarks set it so sweep wall-clock reflects the
	// collection latency that sharding parallelises, independent of how
	// many cores the host happens to expose.
	FetchLatency time.Duration
}

// New builds a fleet at day zero.
func New(origin time.Time, configs []ServiceConfig) *Fleet {
	f := &Fleet{origin: origin}
	for _, cfg := range configs {
		cfg := cfg
		if cfg.DeployEveryDays == 0 {
			cfg.DeployEveryDays = 2
		}
		svc := &Service{Cfg: cfg}
		r := rand.New(rand.NewSource(cfg.Seed))
		for i := 0; i < cfg.Instances; i++ {
			inst := &Instance{
				Service: cfg.Name,
				Name:    fmt.Sprintf("%s-%04d", cfg.Name, i),
				hot:     i < cfg.HotInstances,
				cfg:     &svc.Cfg,
			}
			n := cfg.BenignGoroutines
			if n == 0 {
				n = 50
			}
			inst.benign = patterns.BenignStacks(r, 1, n)
			svc.instances = append(svc.instances, inst)
		}
		f.Services = append(f.Services, svc)
	}
	return f
}

// Instances returns all instances of all services.
func (f *Fleet) Instances() []*Instance {
	var out []*Instance
	for _, s := range f.Services {
		out = append(out, s.instances...)
	}
	return out
}

// AdvanceDay moves the simulation forward one day, growing leaked
// populations, applying deploy resets, and honouring fixes.
func (f *Fleet) AdvanceDay() {
	f.Day++
	for _, s := range f.Services {
		cfg := s.Cfg
		for _, in := range s.instances {
			// Deploy boundary: the backlog clears.
			if f.Day%cfg.DeployEveryDays == 0 {
				in.blocked.Store(0)
			}
			leakLive := cfg.Pattern != nil &&
				f.Day >= cfg.LeakStartDay &&
				(cfg.FixDay < 0 || f.Day < cfg.FixDay)
			if !leakLive {
				continue
			}
			rate := cfg.LeakPerDay
			if in.hot {
				rate = cfg.HotLeakPerDay
			}
			in.blocked.Add(int64(rate))
		}
	}
}

// DeployAll rolls every instance immediately: backlogs clear exactly as
// at an AdvanceDay deploy boundary, but without advancing the clock.
// Safe to call while sweeps read the fleet concurrently.
func (f *Fleet) DeployAll() { f.DeployRolling(1) }

// DeployRolling rolls the first ceil(frac×n) instances of every service
// immediately — the mid-sweep version skew a rolling deploy causes: a
// sweep in flight observes the rolled instances post-deploy (backlog
// reset to zero) and the rest still on the old version with their full
// clusters. Safe to call while sweeps read the fleet concurrently.
func (f *Fleet) DeployRolling(frac float64) {
	for _, s := range f.Services {
		n := int(math.Ceil(frac * float64(len(s.instances))))
		for i := 0; i < n && i < len(s.instances); i++ {
			s.instances[i].blocked.Store(0)
		}
	}
}

// Snapshots captures one collection sweep directly (no HTTP), with the
// leaked cluster fully materialised — faithful but memory-proportional to
// the blocked population. Use SnapshotsAggregated for platform-scale
// sweeps.
func (f *Fleet) Snapshots() []*gprofile.Snapshot {
	at := f.origin.Add(time.Duration(f.Day) * 24 * time.Hour)
	var out []*gprofile.Snapshot
	for _, in := range f.Instances() {
		out = append(out, &gprofile.Snapshot{
			Service:    in.Service,
			Instance:   in.Name,
			TakenAt:    at,
			Goroutines: in.Stacks(),
		})
	}
	return out
}

// snapshotAggregated captures this instance in the pre-aggregated form:
// the benign population is materialised, while the leaked cluster —
// thousands of goroutines with the identical stack, exactly what a leak
// produces — is carried as a (operation, location) count. The analyzer
// consumes both forms identically.
func (in *Instance) snapshotAggregated(at time.Time) *gprofile.Snapshot {
	snap := &gprofile.Snapshot{
		Service:    in.Service,
		Instance:   in.Name,
		TakenAt:    at,
		Goroutines: in.benign,
	}
	if blocked := int(in.blocked.Load()); blocked > 0 && in.cfg.Pattern != nil {
		// One representative record determines the operation kind
		// and location; the count rides alongside.
		rep := in.cfg.Pattern.Stacks(1, 1)
		patterns.Relocate(rep, in.cfg.LeakFile, in.cfg.LeakLine)
		if op, ok := rep[0].BlockedChannelOp(); ok {
			snap.PreAggregated = map[stack.BlockedOp]int{op: blocked}
		}
	}
	return snap
}

// SnapshotsAggregated captures one sweep in the pre-aggregated form,
// materialising the per-instance slice. Platform-scale sweeps should use
// SweepInto, which streams instances into an aggregator instead.
func (f *Fleet) SnapshotsAggregated() []*gprofile.Snapshot {
	at := f.origin.Add(time.Duration(f.Day) * 24 * time.Hour)
	var out []*gprofile.Snapshot
	for _, in := range f.Instances() {
		out = append(out, in.snapshotAggregated(at))
	}
	return out
}

// SweepInto folds one collection sweep directly into agg, instance by
// instance, without materialising the sweep as a snapshot slice — the
// simulator twin of Collector.CollectInto. It returns the number of
// instances swept.
func (f *Fleet) SweepInto(agg *leakprof.Aggregator) int {
	at := f.origin.Add(time.Duration(f.Day) * 24 * time.Hour)
	n := 0
	for _, s := range f.Services {
		for _, in := range s.instances {
			agg.Add(in.snapshotAggregated(at))
			n++
		}
	}
	return n
}

// Source returns a leakprof.Source sweeping the fleet's current day
// directly (no HTTP), one instance at a time in the pre-aggregated form —
// the simulator origin for the unified Pipeline, letting platform-scale
// simulations drive the exact engine production sweeps use.
func (f *Fleet) Source() leakprof.Source {
	return fleetSource{f: f}
}

type fleetSource struct {
	f *Fleet
}

func (fleetSource) Name() string { return "fleet" }

func (s fleetSource) Sweep(ctx context.Context, env *leakprof.SweepEnv) error {
	at := s.f.origin.Add(time.Duration(s.f.Day) * 24 * time.Hour)
	for _, svc := range s.f.Services {
		for _, in := range svc.instances {
			if err := ctx.Err(); err != nil {
				return err
			}
			if s.f.FetchLatency > 0 {
				time.Sleep(s.f.FetchLatency)
			}
			env.Emit(in.snapshotAggregated(at))
		}
	}
	return nil
}

// Serve stands up a real HTTP profile endpoint per instance and returns
// LEAKPROF endpoints plus a shutdown function. Intended for moderate
// fleet sizes (examples, integration tests).
func (f *Fleet) Serve() ([]leakprof.Endpoint, func()) {
	return f.ServeWith(nil)
}

// ServeWith is Serve with a per-instance handler wrapper — the chaos
// seam. A non-nil wrap receives each instance and its real profile
// handler and returns the handler actually mounted, letting
// fault-injection middleware (delays, hangs, corrupted bodies) sit
// between the sweep and the honest endpoint without the fleet knowing.
func (f *Fleet) ServeWith(wrap func(in *Instance, h http.Handler) http.Handler) ([]leakprof.Endpoint, func()) {
	var endpoints []leakprof.Endpoint
	var servers []*httptest.Server
	for _, in := range f.Instances() {
		in := in
		var h http.Handler = gprofile.Handler{Stacks: in.Stacks}
		if wrap != nil {
			h = wrap(in, h)
		}
		srv := httptest.NewServer(h)
		servers = append(servers, srv)
		endpoints = append(endpoints, leakprof.Endpoint{
			Service:  in.Service,
			Instance: in.Name,
			URL:      srv.URL + "/debug/pprof/goroutine?debug=2",
		})
	}
	return endpoints, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// TotalBlocked sums blocked goroutines across a service's instances.
func (s *Service) TotalBlocked() int {
	total := 0
	for _, in := range s.instances {
		total += int(in.blocked.Load())
	}
	return total
}

// MaxBlocked returns the largest single-instance cluster in the service.
func (s *Service) MaxBlocked() (string, int) {
	name, max := "", 0
	for _, in := range s.instances {
		if b := int(in.blocked.Load()); b > max {
			name, max = in.Name, b
		}
	}
	return name, max
}
