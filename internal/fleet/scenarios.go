package fleet

import (
	"time"

	"repro/internal/patterns"
	"repro/internal/report"
	"repro/leakprof"
)

// Fig6Config reproduces the paper's Fig-6 incident: a leak ships to a
// ~800-instance service; the representative instance spikes toward 16K
// blocked goroutines while the fleet accumulates ~3 million.
func Fig6Config() ServiceConfig {
	return ServiceConfig{
		Name:      "fig6-service",
		Instances: 800,
		Pattern:   patterns.TimeoutLeak,
		LeakFile:  "services/fig6/handler.go",
		LeakLine:  42,
		// Fleet average ~3750/instance at the peak; deploys every 6
		// days during the incident window.
		LeakPerDay:       700,
		HotInstances:     1,
		HotLeakPerDay:    2900,
		LeakStartDay:     1,
		FixDay:           -1,
		DeployEveryDays:  7,
		BenignGoroutines: 40,
		Seed:             6,
	}
}

// Fig6Point is one day of the Fig-6 series.
type Fig6Point struct {
	Day            int
	Representative int // top instance's blocked count
	FleetTotal     int // all instances
	Detected       bool
}

// RunFig6 advances the incident for days days, sweeping with the analyzer
// daily; Detected marks the first day the location crosses the reporting
// threshold.
func RunFig6(days int) []Fig6Point {
	f := New(time.Unix(0, 0).UTC(), []ServiceConfig{Fig6Config()})
	analyzer := &leakprof.Analyzer{} // default 10K threshold, RMS
	var series []Fig6Point
	for d := 0; d < days; d++ {
		f.AdvanceDay()
		svc := f.Services[0]
		_, max := svc.MaxBlocked()
		agg := analyzer.NewAggregator()
		f.SweepInto(agg)
		findings := agg.Findings(analyzer.Ranking)
		series = append(series, Fig6Point{
			Day:            f.Day,
			Representative: max,
			FleetTotal:     svc.TotalBlocked(),
			Detected:       len(findings) > 0,
		})
	}
	return series
}

// YearOutcome summarises the §VII one-year production deployment:
// 33 reports filed, 24 acknowledged as real, 21 fixed.
type YearOutcome struct {
	Reports      int
	Acknowledged int
	Fixed        int
	Rejected     int
	// ByPattern counts acknowledged defects per pattern name.
	ByPattern map[string]int
}

// Precision is acknowledged/reports (the paper's 72.7%).
func (y YearOutcome) Precision() float64 {
	if y.Reports == 0 {
		return 0
	}
	return float64(y.Acknowledged) / float64(y.Reports)
}

// RunYear simulates the year-long LEAKPROF deployment: real defects drawn
// from the §VII taxonomy ship to services through the year, and benign
// congestion events (legitimate high-concentration blocking, the false-
// positive source) occur occasionally. Every sweep runs the real
// analyzer/reporter pipeline; triage acknowledges real defects and
// rejects congestion reports; all but three acknowledged defects get
// fixed (the paper's 21 of 24).
func RunYear(seed int64) YearOutcome {
	taxonomy := patterns.LeakprofTaxonomy()

	// The §VII taxonomy weights are integer report counts summing to 24;
	// expanding them yields exactly the paper's defect mix (timeout 5,
	// premature return 4, NCast 4, double send 2, ...).
	var defectPatterns []*patterns.Pattern
	for _, w := range taxonomy.Weights() {
		for i := 0; i < int(w.Weight); i++ {
			defectPatterns = append(defectPatterns, w.Pattern)
		}
	}

	// 24 real defects spread over the year, each on its own service.
	var configs []ServiceConfig
	patternOf := map[string]string{}
	for i := 0; i < 24 && i < len(defectPatterns); i++ {
		p := defectPatterns[i]
		name := serviceName("real", i)
		patternOf[name] = p.Name
		configs = append(configs, ServiceConfig{
			Name:             name,
			Instances:        8,
			Pattern:          p,
			LeakFile:         "services/" + name + "/handler.go",
			LeakLine:         30 + i,
			LeakPerDay:       4000,
			LeakStartDay:     3 + i*15, // staggered through the year
			FixDay:           -1,
			DeployEveryDays:  365, // incident persists until triaged
			BenignGoroutines: 20,
			Seed:             int64(100 + i),
		})
	}
	// 9 congestion events: legitimately blocked fan-out under overload.
	// They exceed the threshold (so LEAKPROF reports them) but triage
	// rejects them.
	for i := 0; i < 9; i++ {
		name := serviceName("busy", i)
		configs = append(configs, ServiceConfig{
			Name:             name,
			Instances:        4,
			Pattern:          patterns.ContractOutsideLoop, // blocked, but by design
			LeakFile:         "services/" + name + "/pool.go",
			LeakLine:         88,
			LeakPerDay:       12000,
			LeakStartDay:     10 + i*38,
			FixDay:           10 + i*38 + 30, // congestion subsides
			DeployEveryDays:  365,
			BenignGoroutines: 20,
			Seed:             int64(500 + i),
		})
	}

	f := New(time.Unix(0, 0).UTC(), configs)
	analyzer := &leakprof.Analyzer{}
	db := report.NewDB()
	reporter := &leakprof.Reporter{DB: db, TopN: 50}

	outcome := YearOutcome{ByPattern: map[string]int{}}
	fixedBudgetSkips := 0
	for day := 0; day < 365; day++ {
		f.AdvanceDay()
		if day%7 != 0 {
			continue // weekly sweeps keep the simulation fast
		}
		agg := analyzer.NewAggregator()
		f.SweepInto(agg)
		alerts := reporter.Report(agg.Findings(analyzer.Ranking))
		for _, a := range alerts {
			if pat, isReal := patternOf[a.Bug.Service]; isReal {
				db.SetStatus(a.Bug.Key, report.StatusAcknowledged)
				outcome.ByPattern[pat]++
				// All but three acknowledged defects get fixed.
				if fixedBudgetSkips < 3 {
					fixedBudgetSkips++
				} else {
					db.SetStatus(a.Bug.Key, report.StatusFixed)
					fixService(f, a.Bug.Service, day)
				}
			} else {
				db.SetStatus(a.Bug.Key, report.StatusRejected)
			}
		}
	}
	counts := db.CountByStatus()
	outcome.Reports = len(db.All())
	outcome.Acknowledged = counts[report.StatusAcknowledged] + counts[report.StatusFixed]
	outcome.Fixed = counts[report.StatusFixed]
	outcome.Rejected = counts[report.StatusRejected]
	return outcome
}

func fixService(f *Fleet, name string, day int) {
	for _, s := range f.Services {
		if s.Cfg.Name == name {
			s.Cfg.FixDay = day + 1
			s.Cfg.DeployEveryDays = 2 // the fix rolls out promptly
		}
	}
}

func serviceName(kind string, i int) string {
	return kind + string(rune('A'+i%26)) + string(rune('a'+(i/26)%26))
}
