package fleet

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/patterns"
	"repro/leakprof"
)

// topoConfigs builds a deterministic multi-service fleet: services
// spread across shards by name hash, a few carrying leaks hot enough to
// cross the default threshold.
func topoConfigs(services, instances int) []ServiceConfig {
	cfgs := make([]ServiceConfig, services)
	for i := range cfgs {
		cfgs[i] = ServiceConfig{
			Name:             fmt.Sprintf("svc-%02d", i),
			Instances:        instances,
			BenignGoroutines: 30,
			Seed:             int64(100 + i),
		}
		if i%3 == 0 {
			cfgs[i].Pattern = patterns.TimeoutLeak
			cfgs[i].LeakFile = fmt.Sprintf("services/svc-%02d/worker.go", i)
			cfgs[i].LeakLine = 40 + i
			cfgs[i].LeakPerDay = 500 * (1 + i%4)
			cfgs[i].HotInstances = 1
			cfgs[i].HotLeakPerDay = 12000
			cfgs[i].LeakStartDay = 1
			cfgs[i].FixDay = -1
		}
	}
	return cfgs
}

// TestTopologyParity is the distributed-correctness anchor: a sharded
// sweep (workers folding partitions, reports round-tripped through the
// wire codec, coordinator merging) must produce byte-for-byte the
// moments, findings, and counts of a single-process sweep of the same
// fleet under the same clock.
func TestTopologyParity(t *testing.T) {
	origin := time.Unix(0, 0).UTC()
	clock := leakprof.WithClock(func() time.Time { return origin })
	for _, shards := range []int{2, 3, 4, 8} {
		f := New(origin, topoConfigs(12, 6))
		for d := 0; d < 3; d++ {
			f.AdvanceDay()
		}

		single := leakprof.New(clock)
		want, err := single.Sweep(context.Background(), f.Source())
		if err != nil {
			t.Fatal(err)
		}

		topo := NewTopology(f, shards, clock)
		got, err := topo.Sweep(context.Background())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}

		if got.Profiles != want.Profiles || got.Errors != want.Errors {
			t.Fatalf("shards=%d: profiles/errors = %d/%d, want %d/%d",
				shards, got.Profiles, got.Errors, want.Profiles, want.Errors)
		}
		if !reflect.DeepEqual(got.Moments(), want.Moments()) {
			t.Fatalf("shards=%d: merged moments diverge from the single fold", shards)
		}
		if !reflect.DeepEqual(got.Findings, want.Findings) {
			t.Fatalf("shards=%d: findings diverge\ngot  %+v\nwant %+v",
				shards, got.Findings, want.Findings)
		}
	}
}

// TestTopologyShardCrash loses one shard's report: the sweep must
// complete, carrying the surviving shards' moments and the lost shard in
// the error accounting.
func TestTopologyShardCrash(t *testing.T) {
	origin := time.Unix(0, 0).UTC()
	clock := leakprof.WithClock(func() time.Time { return origin })
	f := New(origin, topoConfigs(12, 6))
	f.AdvanceDay()

	topo := NewTopology(f, 4, clock)
	topo.FailShard = 1
	sweep, err := topo.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Errors != 1 {
		t.Fatalf("Errors = %d, want 1 (the lost shard)", sweep.Errors)
	}
	if sweep.FailedByService["shard-1"] != 1 {
		t.Fatalf("FailedByService = %v, want shard-1:1", sweep.FailedByService)
	}
	// The surviving shards' services are all present.
	whole := leakprof.New(clock)
	want, err := whole.Sweep(context.Background(), f.Source())
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Profiles >= want.Profiles || sweep.Profiles == 0 {
		t.Fatalf("Profiles = %d, want partial coverage below %d", sweep.Profiles, want.Profiles)
	}
}

// TestTopologyGlobalErrorBudget checks the coordinator's journaled
// failure history reaches shard workers: FailedByService summed across
// shard reports lands in the journal, and the next sweep's workers see
// it through SweepEnv.PrevFailures.
func TestTopologyGlobalErrorBudget(t *testing.T) {
	origin := time.Unix(0, 0).UTC()
	clock := leakprof.WithClock(func() time.Time { return origin })
	f := New(origin, topoConfigs(8, 4))
	f.AdvanceDay()

	dir := t.TempDir()
	topo := NewTopology(f, 2, clock, leakprof.WithStateDir(dir))
	topo.FailShard = 0
	if _, err := topo.Sweep(context.Background()); err != nil {
		t.Fatal(err)
	}
	store, err := topo.Coordinator.State()
	if err != nil {
		t.Fatal(err)
	}
	if got := store.LastFailureCounts(); got["shard-0"] != 1 {
		t.Fatalf("journaled failure counts = %v, want shard-0:1", got)
	}
	// The next sweep's workers all receive the journaled counts.
	seen := make(chan map[string]int, len(topo.Workers))
	fetches := make([]leakprof.ShardFetch, len(topo.Workers))
	for i := range topo.Workers {
		name := fmt.Sprintf("probe-%d", i)
		worker := topo.Workers[i]
		src := f.ShardSource(i, len(topo.Workers))
		fetches[i] = leakprof.ShardFetch{Name: name, Fetch: func(ctx context.Context, env *leakprof.SweepEnv) (*leakprof.ShardReport, error) {
			seen <- env.PrevFailures()
			return worker.ShardSweep(ctx, src, name, env.PrevFailures())
		}}
	}
	if _, err := topo.Coordinator.Sweep(context.Background(), leakprof.MergedReports(fetches...)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(topo.Workers); i++ {
		if prev := <-seen; prev["shard-0"] != 1 {
			t.Fatalf("worker %d saw prevFailures %v, want shard-0:1", i, prev)
		}
	}
}

// BenchmarkShardedSweep measures one distributed sweep's wall-clock
// against shard count at a fixed fleet size: the shards sweep their
// partitions concurrently, so wall-clock should fall as shards grow
// until coordinator merge overhead (and whatever CPU work the host
// serialises) dominates. FetchLatency models the per-endpoint round
// trip a real collection pays — the cost sharding actually
// parallelises — so the scaling curve holds even on a single-core
// host, where pure CPU folding could never speed up.
func BenchmarkShardedSweep(b *testing.B) {
	origin := time.Unix(0, 0).UTC()
	cfgs := topoConfigs(64, 32)
	for i := range cfgs {
		// Production-shaped instances: a few hundred benign goroutines
		// each, so per-shard collection work dominates merge overhead.
		cfgs[i].BenignGoroutines = 300
	}
	f := New(origin, cfgs)
	f.FetchLatency = 50 * time.Microsecond
	f.AdvanceDay()
	clock := leakprof.WithClock(func() time.Time { return origin })
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			topo := NewTopology(f, shards, clock)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := topo.Sweep(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestNestedTopologyParity is the two-level tree: four leaf workers
// sweep their fleet partitions, two regional coordinators each fold a
// pair of leaf reports through their own SweepEnv.MergeReport
// (ShardSweep over MergedReports) into a regional report, and the root
// merges the two regional reports. Every report — leaf and regional —
// rides the wire codec, and the result must match the flat
// single-process fold byte for byte, because moment merging is
// associative: merge(merge(a,b), merge(c,d)) = fold(a ∪ b ∪ c ∪ d).
func TestNestedTopologyParity(t *testing.T) {
	origin := time.Unix(0, 0).UTC()
	clock := leakprof.WithClock(func() time.Time { return origin })
	f := New(origin, topoConfigs(12, 6))
	for d := 0; d < 2; d++ {
		f.AdvanceDay()
	}
	const leaves = 4

	leaf := func(i int) leakprof.ShardFetch {
		name := fmt.Sprintf("worker-%d", i)
		worker := leakprof.New(clock)
		src := f.ShardSource(i, leaves)
		return leakprof.ShardFetch{Name: name, Fetch: func(ctx context.Context, env *leakprof.SweepEnv) (*leakprof.ShardReport, error) {
			rep, err := worker.ShardSweep(ctx, src, name, env.PrevFailures())
			if err != nil {
				return rep, err
			}
			return roundTripReport(rep)
		}}
	}
	regional := func(name string, pair ...leakprof.ShardFetch) leakprof.ShardFetch {
		mid := leakprof.New(clock)
		return leakprof.ShardFetch{Name: name, Fetch: func(ctx context.Context, env *leakprof.SweepEnv) (*leakprof.ShardReport, error) {
			rep, err := mid.ShardSweep(ctx, leakprof.MergedReports(pair...), name, env.PrevFailures())
			if err != nil {
				return rep, err
			}
			return roundTripReport(rep)
		}}
	}

	root := leakprof.New(clock)
	nested, err := root.Sweep(context.Background(), leakprof.MergedReports(
		regional("region-a", leaf(0), leaf(1)),
		regional("region-b", leaf(2), leaf(3)),
	))
	if err != nil {
		t.Fatal(err)
	}

	flat := leakprof.New(clock)
	want, err := flat.Sweep(context.Background(), f.Source())
	if err != nil {
		t.Fatal(err)
	}

	if nested.Profiles != want.Profiles || nested.Errors != want.Errors {
		t.Fatalf("nested profiles/errors = %d/%d, want %d/%d",
			nested.Profiles, nested.Errors, want.Profiles, want.Errors)
	}
	if !reflect.DeepEqual(nested.Moments(), want.Moments()) {
		t.Fatal("nested merge's moments diverge from the flat fold")
	}
	if !reflect.DeepEqual(nested.Findings, want.Findings) {
		t.Fatalf("nested findings diverge\ngot  %+v\nwant %+v", nested.Findings, want.Findings)
	}
	if len(want.Findings) == 0 {
		t.Fatal("parity vacuous: flat sweep found nothing")
	}
}

// TestTopologyStragglerDeadline slows every fetch far past the
// coordinator's straggler deadline: each shard is written off as one
// failed instance and the sweep still completes, bounded by the
// deadline instead of the slowest worker.
func TestTopologyStragglerDeadline(t *testing.T) {
	origin := time.Unix(0, 0).UTC()
	clock := leakprof.WithClock(func() time.Time { return origin })
	f := New(origin, topoConfigs(4, 3))
	f.AdvanceDay()
	// ~12 instances x 50ms dwarfs the 30ms deadline.
	f.FetchLatency = 50 * time.Millisecond

	topo := NewTopology(f, 2, clock)
	topo.StragglerDeadline = 30 * time.Millisecond
	start := time.Now()
	sweep, err := topo.Sweep(context.Background())
	if err != nil {
		t.Fatalf("stragglers failed the sweep: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("sweep took %v, the deadline never cut the stragglers loose", elapsed)
	}
	if sweep.Errors != 2 || sweep.FailedByService["shard-0"] != 1 || sweep.FailedByService["shard-1"] != 1 {
		t.Fatalf("Errors=%d FailedByService=%v, want both shards written off",
			sweep.Errors, sweep.FailedByService)
	}
}
