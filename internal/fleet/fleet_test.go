package fleet

import (
	"context"
	"testing"
	"time"

	"repro/internal/patterns"
	"repro/leakprof"
)

func leakyConfig(instances int) ServiceConfig {
	return ServiceConfig{
		Name:             "svc",
		Instances:        instances,
		Pattern:          patterns.PrematureReturn,
		LeakFile:         "services/svc/worker.go",
		LeakLine:         17,
		LeakPerDay:       100,
		LeakStartDay:     1,
		FixDay:           -1,
		DeployEveryDays:  100, // effectively never within the test window
		BenignGoroutines: 10,
		Seed:             1,
	}
}

func TestInstanceStacksCarryLeakSignature(t *testing.T) {
	f := New(time.Unix(0, 0), []ServiceConfig{leakyConfig(2)})
	f.AdvanceDay() // leak starts
	in := f.Instances()[0]
	if in.Blocked() != 100 {
		t.Fatalf("blocked = %d, want 100", in.Blocked())
	}
	stacks := in.Stacks()
	if len(stacks) != 110 { // 10 benign + 100 leaked
		t.Fatalf("stacks = %d, want 110", len(stacks))
	}
	var leaked int
	for _, g := range stacks {
		if op, ok := g.BlockedChannelOp(); ok {
			if op.Location != "services/svc/worker.go:17" {
				t.Fatalf("leak location = %q", op.Location)
			}
			leaked++
		}
	}
	if leaked != 100 {
		t.Errorf("channel-blocked stacks = %d, want 100", leaked)
	}
}

func TestDeployResetsAndFix(t *testing.T) {
	cfg := leakyConfig(1)
	cfg.DeployEveryDays = 3
	cfg.FixDay = 5
	f := New(time.Unix(0, 0), []ServiceConfig{cfg})
	counts := []int{}
	for d := 0; d < 8; d++ {
		f.AdvanceDay()
		counts = append(counts, f.Instances()[0].Blocked())
	}
	// Day 1: +100; day 2: +100; day 3: deploy reset then +100; day 4:
	// +100; day 5+: fixed (no growth); day 6: deploy reset to 0.
	want := []int{100, 200, 100, 200, 200, 0, 0, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("day %d: blocked = %d, want %d (full: %v)", i+1, counts[i], want[i], counts)
		}
	}
}

func TestHotInstanceConcentration(t *testing.T) {
	cfg := leakyConfig(10)
	cfg.HotInstances = 1
	cfg.HotLeakPerDay = 1000
	f := New(time.Unix(0, 0), []ServiceConfig{cfg})
	f.AdvanceDay()
	name, max := f.Services[0].MaxBlocked()
	if max != 1000 {
		t.Errorf("hot instance blocked = %d, want 1000", max)
	}
	if name != "svc-0000" {
		t.Errorf("hot instance = %s", name)
	}
	if total := f.Services[0].TotalBlocked(); total != 1000+9*100 {
		t.Errorf("total = %d", total)
	}
}

func TestSnapshotsFeedAnalyzer(t *testing.T) {
	cfg := leakyConfig(3)
	cfg.LeakPerDay = 600
	f := New(time.Unix(0, 0), []ServiceConfig{cfg})
	analyzer := &leakprof.Analyzer{Threshold: 500}
	// Day 0: nothing.
	if findings := analyzer.Analyze(f.Snapshots()); len(findings) != 0 {
		t.Fatalf("pre-leak findings: %v", findings)
	}
	f.AdvanceDay()
	findings := analyzer.Analyze(f.Snapshots())
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(findings))
	}
	fd := findings[0]
	if fd.Service != "svc" || fd.Op != "send" || fd.Location != "services/svc/worker.go:17" {
		t.Errorf("finding = %+v", fd)
	}
	if fd.TotalBlocked != 1800 || fd.Instances != 3 {
		t.Errorf("total=%d instances=%d", fd.TotalBlocked, fd.Instances)
	}
}

func TestServeEndToEndOverHTTP(t *testing.T) {
	cfg := leakyConfig(2)
	cfg.LeakPerDay = 200
	f := New(time.Unix(0, 0), []ServiceConfig{cfg})
	f.AdvanceDay()
	endpoints, shutdown := f.Serve()
	defer shutdown()
	if len(endpoints) != 2 {
		t.Fatalf("endpoints = %d", len(endpoints))
	}
	collector := &leakprof.Collector{}
	results := collector.Collect(context.Background(), endpoints)
	snaps := leakprof.Snapshots(results)
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d (errors: %v)", len(snaps), results)
	}
	analyzer := &leakprof.Analyzer{Threshold: 150}
	findings := analyzer.Analyze(snaps)
	if len(findings) != 1 || findings[0].Location != "services/svc/worker.go:17" {
		t.Fatalf("findings over HTTP = %+v", findings)
	}
}

func TestRunFig6Shape(t *testing.T) {
	series := RunFig6(6)
	if len(series) != 6 {
		t.Fatalf("series length = %d", len(series))
	}
	last := series[len(series)-1]
	// Representative instance climbs into the five-figure range
	// (paper: 16K) and the fleet total into the millions (paper: ~3M).
	if last.Representative < 10000 || last.Representative > 25000 {
		t.Errorf("representative = %d, want ~16K", last.Representative)
	}
	if last.FleetTotal < 2_000_000 || last.FleetTotal > 4_500_000 {
		t.Errorf("fleet total = %d, want ~3M", last.FleetTotal)
	}
	// Detection happens once the threshold is crossed, before the end.
	var detectedAt int
	for _, p := range series {
		if p.Detected {
			detectedAt = p.Day
			break
		}
	}
	if detectedAt == 0 {
		t.Error("leak never detected")
	}
	if series[0].Detected {
		t.Error("detected on day one, before any cluster formed")
	}
	// Monotone growth until deploy day.
	for i := 1; i < len(series); i++ {
		if series[i].Day%7 != 0 && series[i].FleetTotal < series[i-1].FleetTotal {
			t.Errorf("fleet total regressed on day %d", series[i].Day)
		}
	}
}

func TestRunYearReproducesSectionVII(t *testing.T) {
	if testing.Short() {
		t.Skip("year simulation")
	}
	y := RunYear(1)
	if y.Reports != 33 {
		t.Errorf("reports = %d, want 33", y.Reports)
	}
	if y.Acknowledged != 24 {
		t.Errorf("acknowledged = %d, want 24", y.Acknowledged)
	}
	if y.Fixed != 21 {
		t.Errorf("fixed = %d, want 21", y.Fixed)
	}
	if y.Rejected != 9 {
		t.Errorf("rejected = %d, want 9", y.Rejected)
	}
	if p := y.Precision(); p < 0.70 || p > 0.75 {
		t.Errorf("precision = %.3f, want ~0.727", p)
	}
	// Pattern mix: timeout leads with 5 reports.
	if y.ByPattern["timeout-leak"] != 5 {
		t.Errorf("timeout reports = %d, want 5 (mix: %v)", y.ByPattern["timeout-leak"], y.ByPattern)
	}
	if y.ByPattern["premature-return"] != 4 || y.ByPattern["ncast-leak"] != 4 {
		t.Errorf("pattern mix = %v", y.ByPattern)
	}
}
