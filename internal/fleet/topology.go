package fleet

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/leakprof"
)

// In-process distributed topology: the simulator twin of a sharded
// deployment. N shard-worker pipelines each sweep the fleet partition
// their shard owns (services hashed by leakprof.ShardOfService, so every
// service lives wholly in one shard) and hand their folded ShardReport
// to a coordinator pipeline that merges them and runs the normal sink
// fan-out and state journal. Everything runs under the pipelines'
// injected clock, so topology sweeps are as deterministic as
// single-process ones — the parity tests assert the merged moments are
// byte-for-byte the single fold.

// ShardSource returns a Source sweeping only the services owned by shard
// (of shards total) on the fleet's current day — the partition a shard
// worker would be configured with in a real deployment.
func (f *Fleet) ShardSource(shard, shards int) leakprof.Source {
	return shardFleetSource{f: f, shard: shard, shards: shards}
}

type shardFleetSource struct {
	f             *Fleet
	shard, shards int
}

func (s shardFleetSource) Name() string {
	return fmt.Sprintf("fleet-shard-%d/%d", s.shard, s.shards)
}

func (s shardFleetSource) Sweep(ctx context.Context, env *leakprof.SweepEnv) error {
	at := s.f.origin.Add(time.Duration(s.f.Day) * 24 * time.Hour)
	for _, svc := range s.f.Services {
		if leakprof.ShardOfService(svc.Cfg.Name, s.shards) != s.shard {
			continue
		}
		for _, in := range svc.instances {
			if err := ctx.Err(); err != nil {
				return err
			}
			if s.f.FetchLatency > 0 {
				time.Sleep(s.f.FetchLatency)
			}
			env.Emit(in.snapshotAggregated(at))
		}
	}
	return nil
}

// Topology is an in-process multi-shard sweep plane over one simulated
// fleet: shard workers plus a coordinator, all sharing the option set
// (clock, threshold, filters) a real deployment would configure
// identically on every node.
type Topology struct {
	// Coordinator merges shard reports and runs sinks/journal; add sinks
	// and state options here.
	Coordinator *leakprof.Pipeline
	// Workers are the per-shard collection pipelines, Workers[i] owning
	// shard i's partition.
	Workers []*leakprof.Pipeline

	fleet *Fleet
	// Wire, when true (the default from NewTopology), round-trips every
	// shard report through the binary wire codec before the coordinator
	// merges it, so in-process sweeps exercise the exact bytes a
	// networked deployment ships.
	Wire bool
	// FailShard, when non-negative, drops that shard's report on the
	// floor (the crash simulation): the sweep completes with the shard's
	// loss in the error accounting.
	FailShard int
	// StragglerDeadline, when positive, closes each merge after that
	// wait: a worker still sweeping is written off as one failed
	// instance and the coordinator merges the reports that made it
	// (leakprof.MergedReportsWithin). Zero waits for the slowest worker.
	StragglerDeadline time.Duration
	// DelayShard, when non-negative, holds that shard's report back for
	// ShardDelay before delivering it — the straggler simulation. With a
	// StragglerDeadline shorter than the delay the coordinator writes
	// the shard off; with a longer one the report still makes the merge.
	DelayShard int
	// ShardDelay is how long DelayShard's report is held.
	ShardDelay time.Duration
}

// NewTopology builds a coordinator and one worker pipeline per shard,
// each configured with opts.
func NewTopology(f *Fleet, shards int, opts ...leakprof.Option) *Topology {
	if shards < 1 {
		shards = 1
	}
	t := &Topology{
		Coordinator: leakprof.New(opts...),
		fleet:       f,
		Wire:        true,
		FailShard:   -1,
		DelayShard:  -1,
	}
	for i := 0; i < shards; i++ {
		t.Workers = append(t.Workers, leakprof.New(opts...))
	}
	return t
}

// Sweep runs one distributed sweep of the fleet's current day: every
// worker sweeps its partition concurrently (each producing a
// ShardReport), the coordinator merges the reports and delivers the
// merged sweep to its sinks and state journal exactly as a
// single-process sweep would be delivered.
func (t *Topology) Sweep(ctx context.Context) (*leakprof.Sweep, error) {
	fetches := make([]leakprof.ShardFetch, len(t.Workers))
	for i := range t.Workers {
		i := i
		name := fmt.Sprintf("shard-%d", i)
		worker := t.Workers[i]
		src := t.fleet.ShardSource(i, len(t.Workers))
		fetches[i] = leakprof.ShardFetch{
			Name: name,
			Fetch: func(ctx context.Context, env *leakprof.SweepEnv) (*leakprof.ShardReport, error) {
				if i == t.FailShard {
					return nil, fmt.Errorf("fleet: shard %d crashed before reporting", i)
				}
				if i == t.DelayShard && t.ShardDelay > 0 {
					select {
					case <-time.After(t.ShardDelay):
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				rep, err := worker.ShardSweep(ctx, src, name, env.PrevFailures())
				if err != nil {
					return rep, err
				}
				if t.Wire {
					return roundTripReport(rep)
				}
				return rep, nil
			},
		}
	}
	if t.StragglerDeadline > 0 {
		return t.Coordinator.Sweep(ctx, leakprof.MergedReportsWithin(t.StragglerDeadline, fetches...))
	}
	return t.Coordinator.Sweep(ctx, leakprof.MergedReports(fetches...))
}

// roundTripReport pushes a report through the wire codec both ways.
func roundTripReport(rep *leakprof.ShardReport) (*leakprof.ShardReport, error) {
	var buf bytes.Buffer
	if err := leakprof.WriteShardReport(&buf, rep); err != nil {
		return nil, err
	}
	return leakprof.ReadShardReport(&buf)
}
