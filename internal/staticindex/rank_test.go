package staticindex

import (
	"strings"
	"testing"
	"time"

	"repro/internal/report"
	"repro/leakprof"
)

// linkFixture builds a hand-authored index exercising every join shape:
// a multi-detector function site, a never-sighted site, a function-less
// site lint, a transient-annotated site, and an oscillating site.
func linkFixture() *Index {
	return &Index{Findings: []Finding{
		{Detector: DetectorGCatch, File: "svc/a/a.go", Function: "leakSend", Line: 10, Reason: "send on chan with no receiver"},
		{Detector: DetectorGoat, File: "svc/a/a.go", Function: "leakSend", Line: 12, Reason: "goroutine blocks forever"},
		{Detector: DetectorGomela, File: "svc/b/b.go", Function: "neverRuns", Line: 5, Reason: "unbuffered send may block"},
		{Detector: DetectorDblSend, File: "svc/c/c.go", Function: "", Line: 7, Reason: "double send on same chan"},
		{Detector: DetectorGCatch, File: "svc/d/d.go", Function: "poll", Line: 3, Reason: "select may block"},
		{Detector: DetectorTransient, File: "svc/d/d.go", Function: "poll", Line: 3, Reason: "all blocking arms transient"},
		{Detector: DetectorGomela, File: "svc/f/f.go", Function: "cong", Line: 8, Reason: "send may block"},
	}}
}

func fileBug(db *report.DB, key, fn, loc string, sightings, blocked int) {
	for i := 0; i < sightings; i++ {
		db.File(report.Bug{
			Key: key, Service: "svc", Op: "send", Location: loc, Function: fn,
			BlockedGoroutines: blocked, FiledAt: time.Unix(int64(1000+i), 0),
		})
	}
}

func TestSitesGroupingAndAlarm(t *testing.T) {
	sites := linkFixture().Sites()
	var a *Site
	for _, s := range sites {
		if s.File == "svc/a/a.go" {
			a = s
		}
	}
	if a == nil {
		t.Fatal("no site for svc/a/a.go")
	}
	if len(a.Detectors) != 2 || a.Detectors[0] != DetectorGCatch || a.Detectors[1] != DetectorGoat {
		t.Fatalf("detectors = %v", a.Detectors)
	}
	if a.Line != 10 {
		t.Fatalf("site line = %d, want the first flagged line 10", a.Line)
	}
	if got := a.Alarm(); got != "gcatch-like,goat-like: send on chan with no receiver" {
		t.Fatalf("Alarm() = %q", got)
	}
	// Transient annotation marks the co-located alarm site, and the
	// annotation itself creates no site.
	for _, s := range sites {
		if s.File == "svc/d/d.go" && !s.Transient {
			t.Fatal("transient-select annotation did not mark the svc/d site")
		}
		for _, d := range s.Detectors {
			if d == DetectorTransient {
				t.Fatal("transient-select must not appear as an alarm detector")
			}
		}
	}
}

func TestAlarmFunc(t *testing.T) {
	lookup := linkFixture().AlarmFunc()
	if got := lookup("a.leakSend", "/abs/build/svc/a/a.go:10"); !strings.Contains(got, "gcatch-like") {
		t.Fatalf("qualified function + absolute path should match, got %q", got)
	}
	if got := lookup("c.init", "svc/c/c.go:7"); !strings.Contains(got, "doublesend") {
		t.Fatalf("site lint should match by exact line, got %q", got)
	}
	if got := lookup("c.init", "svc/c/c.go:8"); got != "" {
		t.Fatalf("site lint must not match other lines, got %q", got)
	}
	if got := lookup("x.unknown", "svc/x/x.go:1"); got != "" {
		t.Fatalf("unknown site should return empty, got %q", got)
	}
}

func TestLinkPopulationsRankingAndActionable(t *testing.T) {
	idx := linkFixture()
	db := report.NewDB()
	fileBug(db, "k-leak", "a.leakSend", "/builds/x/svc/a/a.go:10", 5, 400)
	fileBug(db, "k-lint", "c.init", "svc/c/c.go:7", 2, 50)
	fileBug(db, "k-dyn", "e.leak", "svc/e/e.go:9", 3, 120)
	fileBug(db, "k-trans", "d.poll", "svc/d/d.go:3", 7, 30)
	fileBug(db, "k-cong", "f.cong", "svc/f/f.go:8", 4, 900)

	verdicts := map[string]leakprof.TrendVerdict{
		"k-leak":  leakprof.TrendGrowing,
		"k-lint":  leakprof.TrendStable,
		"k-dyn":   leakprof.TrendGrowing,
		"k-trans": leakprof.TrendGrowing,
		"k-cong":  leakprof.TrendOscillating,
	}
	rep := Link(idx, db, func(key string) leakprof.TrendVerdict { return verdicts[key] })

	if len(rep.Confirmed) != 4 {
		t.Fatalf("confirmed = %d (%v), want 4", len(rep.Confirmed), rep.Confirmed)
	}
	// Ranking: sightings desc — k-trans (7) > k-leak (5) > k-cong (4) > k-lint (2).
	order := []string{"d.poll", "a.leakSend", "f.cong", ""}
	for i, want := range order {
		got := rep.Confirmed[i]
		if want == "" {
			if got.Function != "" {
				t.Fatalf("confirmed[%d] = %q, want the function-less lint site", i, got.Function)
			}
			continue
		}
		if !strings.HasSuffix(want, "."+got.Function) {
			t.Fatalf("confirmed[%d] = %q, want site of %q", i, got.Function, want)
		}
	}
	if len(rep.Unsighted) != 1 || rep.Unsighted[0].Function != "neverRuns" {
		t.Fatalf("unsighted = %v, want exactly neverRuns", rep.Unsighted)
	}
	if len(rep.DynamicOnly) != 1 || rep.DynamicOnly[0].Key != "k-dyn" {
		t.Fatalf("dynamic-only = %v, want exactly k-dyn", rep.DynamicOnly)
	}

	act := rep.Actionable()
	got := map[string]bool{}
	for _, rf := range act {
		got[rf.File] = true
	}
	for _, want := range []string{"svc/a/a.go", "svc/c/c.go", "svc/e/e.go"} {
		if !got[want] {
			t.Errorf("actionable missing %s", want)
		}
	}
	if got["svc/d/d.go"] {
		t.Error("transient site must not be actionable")
	}
	if got["svc/f/f.go"] {
		t.Error("oscillating site must not be actionable")
	}
}

func TestSuppressions(t *testing.T) {
	idx := linkFixture()
	db := report.NewDB()
	fileBug(db, "k-leak", "a.leakSend", "svc/a/a.go:10", 5, 400)
	fileBug(db, "k-cong", "f.cong", "svc/f/f.go:8", 4, 900)
	verdicts := map[string]leakprof.TrendVerdict{
		"k-leak": leakprof.TrendGrowing,
		"k-cong": leakprof.TrendOscillating,
	}
	rep := Link(idx, db, func(key string) leakprof.TrendVerdict { return verdicts[key] })

	sup := rep.Suppressions()
	fns := sup.Functions()
	want := map[string]bool{"b.neverRuns": false, "d.poll": false, "f.cong": false}
	for _, fn := range fns {
		if fn == "a.leakSend" {
			t.Fatal("the production-confirmed growing leak must never be suppressed")
		}
		if _, ok := want[fn]; ok {
			want[fn] = true
		}
	}
	for fn, seen := range want {
		if !seen {
			t.Errorf("suppressions missing %s (got %v)", fn, fns)
		}
	}
}
