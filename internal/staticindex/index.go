// Package staticindex closes the static half of the paper's loop: it is
// the unified driver that runs the full static detector suite — all
// three staticbase configurations (GCatch-like, GOAT-like, GOMELA-like)
// plus the astcheck lints — over a source tree, persists the findings as
// an index with stable keys, and joins that index against production
// evidence (the report.DB bug database and TrendTracker verdicts) to
// produce evidence-ranked findings and machine-generated goleak
// suppressions.
//
// The paper runs its halves in isolation: static analyzers report with
// ~34–51% precision (Table III), while the dynamic profiler is precise
// but only sees what production exercised. The index is the join point:
// a static alarm confirmed by production sightings is near-certainly
// real; a static alarm production has never sighted — over months of
// sweeps covering the fleet — is a suppression candidate; a production
// sighting with no static alarm is the dynamic tool earning its keep.
package staticindex

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/astcheck"
	"repro/internal/frame"
	"repro/internal/staticbase"
)

// Detector ids, as recorded in Finding.Detector. The staticbase ids are
// the Config names; the astcheck ids are the check names.
const (
	DetectorGCatch    = "gcatch-like"
	DetectorGoat      = "goat-like"
	DetectorGomela    = "gomela-like"
	DetectorRangeLint = "rangelint"
	DetectorDblSend   = "doublesend"
	DetectorTimerLoop = "timerloop"
	// DetectorTransient is the transient-select annotation. Unlike every
	// other detector it does not claim a defect: it marks select sites
	// whose blocking arms are all provably transient (time.After,
	// ctx.Done, ...), i.e. sites where a production sighting is expected
	// and harmless. The cross-linker treats it as exculpatory evidence,
	// never as an alarm.
	DetectorTransient = "transient-select"
)

// IsAlarm reports whether detector claims a defect (everything except
// the transient-select annotation).
func IsAlarm(detector string) bool { return detector != DetectorTransient }

// Finding is one static report with the index's stable identity: the
// five fields (file, function, line, detector, reason) are the key, so
// re-scanning an unchanged tree yields byte-identical indexes and
// baselines diff cleanly.
type Finding struct {
	// Detector is the producing detector's id.
	Detector string
	// File is the tree-relative path of the flagged code.
	File string
	// Function is the enclosing function declaration's name; empty for
	// the astcheck lints, which report sites, not functions.
	Function string
	// Line is the flagged line.
	Line int
	// Reason is the detector's diagnostic.
	Reason string
}

// Key is the finding's stable identity.
func (f Finding) Key() string {
	return f.File + "\x00" + f.Function + "\x00" +
		fmt.Sprintf("%d", f.Line) + "\x00" + f.Detector + "\x00" + f.Reason
}

// String renders the finding as a compiler-style diagnostic.
func (f Finding) String() string {
	fn := f.Function
	if fn == "" {
		fn = "-"
	}
	return fmt.Sprintf("%s:%d: %s: %s: %s", f.File, f.Line, f.Detector, fn, f.Reason)
}

// Index is one scan's persisted findings.
type Index struct {
	// Root records what was scanned (a tree path or a corpus label).
	Root string
	// GeneratedAt is the scan timestamp.
	GeneratedAt time.Time
	// Findings are sorted by Key for stable diffs.
	Findings []Finding
}

// Scan runs the full detector suite over a corpus of (path, source)
// pairs and returns the deduplicated, key-sorted index.
func Scan(files map[string]string) *Index {
	idx := &Index{}
	seen := map[string]bool{}
	add := func(f Finding) {
		if k := f.Key(); !seen[k] {
			seen[k] = true
			idx.Findings = append(idx.Findings, f)
		}
	}

	for _, cfg := range []staticbase.Config{
		staticbase.GCatchLike(), staticbase.GoatLike(), staticbase.GomelaLike(),
	} {
		a := &staticbase.Analyzer{Cfg: cfg}
		for _, sf := range a.AnalyzeFiles(files) {
			add(Finding{
				Detector: sf.Tool,
				File:     sf.File,
				Function: sf.Function,
				Line:     sf.Pos.Line,
				Reason:   sf.Reason,
			})
		}
	}

	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		af, err := astcheck.ParseSource(p, files[p])
		if err != nil {
			continue // tolerate unparseable files, like the analyzers do
		}
		var lints []astcheck.Finding
		lints = append(lints, astcheck.RangeLint(af)...)
		lints = append(lints, astcheck.DoubleSendLint(af)...)
		lints = append(lints, astcheck.TimerLoopLint(af)...)
		lints = append(lints, astcheck.TransientSelects(af)...)
		for _, lf := range lints {
			add(Finding{
				Detector: lf.Check,
				File:     lf.Pos.Filename,
				Line:     lf.Pos.Line,
				Reason:   lf.Message,
			})
		}
	}

	sort.Slice(idx.Findings, func(i, j int) bool {
		return idx.Findings[i].Key() < idx.Findings[j].Key()
	})
	return idx
}

// ScanTree scans every .go file under root, skipping directories named
// "testdata" and _test.go files (static alarms exist to be joined
// against production sites; test code never runs there). File paths in
// the index are root-relative with forward slashes.
func ScanTree(root string) (*Index, error) {
	files := map[string]string{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		files[filepath.ToSlash(rel)] = string(src)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("staticindex: walking %s: %w", root, err)
	}
	idx := Scan(files)
	idx.Root = root
	return idx, nil
}

// On-disk format. The outer framing is the journal's (internal/frame): a
// 4-byte big-endian payload length plus a 4-byte CRC-32 of the payload.
// The payload is:
//
//	byte 0: indexMagic (0xB3 — journal frames are 0xB1, shard reports 0xB2)
//	byte 1: indexVersion
//	byte 2: flags (indexFlagFlate: the body is a flate stream)
//	rest:   body
//
// The body reuses the journal codec's primitives — one string table
// shared by every finding (detector ids and file paths repeat heavily),
// varints, presence-byte timestamps.
const (
	indexMagic     = 0xB3
	indexVersion   = 1
	indexFlagFlate = 1 << 0
	indexFlateMin  = 4 << 10
)

// WriteTo writes the index as one framed record.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	var tbl frame.StringTable
	body := idx.encodeBody(&tbl)
	full := tbl.AppendTo(make([]byte, 0, len(body)+64))
	full = append(full, body...)

	payload := []byte{indexMagic, indexVersion, 0}
	if len(full) >= indexFlateMin {
		payload[2] |= indexFlagFlate
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return 0, fmt.Errorf("staticindex: codec: %w", err)
		}
		if _, err := zw.Write(full); err != nil {
			return 0, fmt.Errorf("staticindex: codec: %w", err)
		}
		if err := zw.Close(); err != nil {
			return 0, fmt.Errorf("staticindex: codec: %w", err)
		}
		payload = append(payload, buf.Bytes()...)
	} else {
		payload = append(payload, full...)
	}
	if err := frame.Write(w, payload); err != nil {
		return 0, fmt.Errorf("staticindex: writing index: %w", err)
	}
	return int64(frame.HeaderSize + len(payload)), nil
}

func (idx *Index) encodeBody(tbl *frame.StringTable) []byte {
	b := make([]byte, 0, 64*len(idx.Findings)+64)
	b = binary.AppendUvarint(b, tbl.Ref(idx.Root))
	b = frame.AppendTime(b, idx.GeneratedAt)
	b = binary.AppendUvarint(b, uint64(len(idx.Findings)))
	for _, f := range idx.Findings {
		b = binary.AppendUvarint(b, tbl.Ref(f.Detector))
		b = binary.AppendUvarint(b, tbl.Ref(f.File))
		b = binary.AppendUvarint(b, tbl.Ref(f.Function))
		b = binary.AppendVarint(b, int64(f.Line))
		b = binary.AppendUvarint(b, tbl.Ref(f.Reason))
	}
	return b
}

// ReadFrom reads one framed index written by WriteTo. The reader may
// hold trailing data; exactly one frame is consumed.
func ReadFrom(r io.Reader) (*Index, error) {
	// No segment bound applies here, so pass the loosest remaining that
	// still rejects implausible lengths.
	payload, _, err := frame.Read(bufio.NewReader(r), int64(frame.MaxPayload)+frame.HeaderSize)
	if err != nil {
		return nil, fmt.Errorf("staticindex: reading index: %w", err)
	}
	return decodeIndex(payload)
}

func decodeIndex(payload []byte) (*Index, error) {
	if len(payload) < 3 {
		return nil, frame.ErrTruncated
	}
	if payload[0] != indexMagic {
		return nil, fmt.Errorf("staticindex: not a findings index (leading byte 0x%02x)", payload[0])
	}
	if payload[1] > indexVersion {
		return nil, fmt.Errorf("staticindex: index version %d, newer than supported %d", payload[1], indexVersion)
	}
	flags, body := payload[2], payload[3:]
	if flags&indexFlagFlate != 0 {
		var err error
		if body, err = io.ReadAll(flate.NewReader(bytes.NewReader(body))); err != nil {
			return nil, fmt.Errorf("staticindex: inflating index: %w", err)
		}
	}
	r := frame.NewReader(body)
	tbl, err := r.StringTable()
	if err != nil {
		return nil, err
	}
	idx := &Index{}
	if idx.Root, err = r.Str(tbl); err != nil {
		return nil, err
	}
	if idx.GeneratedAt, err = r.Time(); err != nil {
		return nil, err
	}
	n, err := r.Count(5)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		idx.Findings = make([]Finding, n)
	}
	for i := range idx.Findings {
		f := &idx.Findings[i]
		if f.Detector, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if f.File, err = r.Str(tbl); err != nil {
			return nil, err
		}
		if f.Function, err = r.Str(tbl); err != nil {
			return nil, err
		}
		line, err := r.Varint()
		if err != nil {
			return nil, err
		}
		f.Line = int(line)
		if f.Reason, err = r.Str(tbl); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// Save writes the index to path atomically (temp file + rename).
func (idx *Index) Save(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".staticindex-*")
	if err != nil {
		return fmt.Errorf("staticindex: saving index: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := idx.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("staticindex: saving index: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("staticindex: saving index: %w", err)
	}
	return nil
}

// Load reads an index file written by Save.
func Load(path string) (*Index, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("staticindex: loading index: %w", err)
	}
	payload, _, err := frame.Read(bufio.NewReader(bytes.NewReader(raw)), int64(len(raw)))
	if err != nil {
		return nil, fmt.Errorf("staticindex: loading index %s: %w", path, err)
	}
	return decodeIndex(payload)
}
