package staticindex

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the checked-in accept-list a CI self-scan diffs new scans
// against: the set of findings the repo has triaged and chosen to live
// with. Entries are keyed (detector, file, function) — deliberately
// line-free, so routine edits that shift code do not churn the file.
type Baseline struct {
	entries map[string]struct{}
}

// baselineKey renders a finding's line-free identity; "-" stands in for
// the empty function of site lints.
func baselineKey(f Finding) string {
	fn := f.Function
	if fn == "" {
		fn = "-"
	}
	return f.Detector + "\t" + f.File + "\t" + fn
}

// Has reports whether the baseline covers the finding.
func (bl *Baseline) Has(f Finding) bool {
	if bl == nil || bl.entries == nil {
		return false
	}
	_, ok := bl.entries[baselineKey(f)]
	return ok
}

// Len returns the number of baseline entries.
func (bl *Baseline) Len() int {
	if bl == nil {
		return 0
	}
	return len(bl.entries)
}

// NewFindings returns the index's findings the baseline does not cover,
// in index order. An empty result means the scan is clean relative to
// the baseline; anything else is a regression the CI job fails on.
func (bl *Baseline) NewFindings(idx *Index) []Finding {
	var out []Finding
	for _, f := range idx.Findings {
		if !bl.Has(f) {
			out = append(out, f)
		}
	}
	return out
}

// WriteBaseline renders the index as baseline text: one tab-separated
// "detector\tfile\tfunction" line per distinct key, sorted, preceded by
// a comment header. The format is the one LoadBaseline parses.
func WriteBaseline(w io.Writer, idx *Index) error {
	keys := make(map[string]struct{}, len(idx.Findings))
	for _, f := range idx.Findings {
		keys[baselineKey(f)] = struct{}{}
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	if _, err := fmt.Fprintln(w, "# staticindex self-scan baseline: detector<TAB>file<TAB>function"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# Regenerate with: go run ./cmd/leakrank -root . -write-baseline <path>"); err != nil {
		return err
	}
	for _, k := range sorted {
		if _, err := fmt.Fprintln(w, k); err != nil {
			return err
		}
	}
	return nil
}

// SaveBaseline writes the baseline for idx to path atomically.
func SaveBaseline(p string, idx *Index) error {
	tmp, err := os.CreateTemp(filepath.Dir(p), ".baseline-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteBaseline(tmp, idx); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// LoadBaseline parses baseline text: blank lines and '#' comments are
// skipped; every other line must be "detector\tfile\tfunction".
func LoadBaseline(r io.Reader) (*Baseline, error) {
	bl := &Baseline{entries: make(map[string]struct{})}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.Count(text, "\t") != 2 {
			return nil, fmt.Errorf("staticindex: baseline line %d: want detector\\tfile\\tfunction, got %q", line, text)
		}
		bl.entries[text] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("staticindex: reading baseline: %w", err)
	}
	return bl, nil
}

// LoadBaselineFile reads a baseline from disk; a missing file is an
// empty baseline, so a repo bootstraps by running the scan once and
// committing the suggested file.
func LoadBaselineFile(p string) (*Baseline, error) {
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{entries: map[string]struct{}{}}, nil
		}
		return nil, err
	}
	defer f.Close()
	return LoadBaseline(f)
}
