package staticindex

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/synth"
)

// corpusFiles renders the synth corpus as Scan input (non-test files
// only, as ScanTree would select).
func corpusFiles(t testing.TB) map[string]string {
	t.Helper()
	corpus := synth.Generate(synth.DefaultConfig())
	files := map[string]string{}
	for _, f := range corpus.Files() {
		if f.Test {
			continue
		}
		files[f.Path] = f.Content
	}
	return files
}

func TestScanDeterministicSortedDeduped(t *testing.T) {
	files := corpusFiles(t)
	idx := Scan(files)
	if len(idx.Findings) == 0 {
		t.Fatal("scan over the synth corpus produced no findings; the corpus plants leaks the analyzers must flag")
	}
	seen := map[string]bool{}
	for i, f := range idx.Findings {
		k := f.Key()
		if seen[k] {
			t.Fatalf("duplicate finding key %q", k)
		}
		seen[k] = true
		if i > 0 && !(idx.Findings[i-1].Key() < k) {
			t.Fatalf("findings not sorted by key at %d: %q !< %q", i, idx.Findings[i-1].Key(), k)
		}
	}
	again := Scan(files)
	if !reflect.DeepEqual(idx.Findings, again.Findings) {
		t.Fatal("re-scanning the same corpus produced a different index")
	}
	// Both detector families must contribute: the suite is a union, not
	// one analyzer.
	byDetector := map[string]int{}
	for _, f := range idx.Findings {
		byDetector[f.Detector]++
	}
	for _, det := range []string{DetectorGCatch, DetectorGoat, DetectorGomela} {
		if byDetector[det] == 0 {
			t.Errorf("no findings from %s", det)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	files := corpusFiles(t)
	idx := Scan(files)
	idx.Root = "synth-corpus"
	idx.GeneratedAt = time.Unix(1700000000, 123456789)

	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root != idx.Root {
		t.Fatalf("Root = %q, want %q", got.Root, idx.Root)
	}
	if !got.GeneratedAt.Equal(idx.GeneratedAt) {
		t.Fatalf("GeneratedAt = %v, want %v", got.GeneratedAt, idx.GeneratedAt)
	}
	if !reflect.DeepEqual(got.Findings, idx.Findings) {
		t.Fatalf("findings did not round-trip: got %d, want %d", len(got.Findings), len(idx.Findings))
	}
}

func TestIndexSaveLoad(t *testing.T) {
	idx := &Index{
		Root:        "tiny",
		GeneratedAt: time.Unix(1700000000, 0),
		Findings: []Finding{
			{Detector: DetectorGCatch, File: "a/a.go", Function: "f", Line: 3, Reason: "r"},
		},
	}
	path := filepath.Join(t.TempDir(), "idx.bin")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Findings, idx.Findings) || got.Root != idx.Root {
		t.Fatalf("Load = %+v, want %+v", got, idx)
	}
}

func TestIndexRejectsForeignAndNewer(t *testing.T) {
	var buf bytes.Buffer
	// A journal frame (0xB1) is not an index.
	buf.Write(frame.New([]byte{0xB1, 1, 0}))
	if _, err := ReadFrom(&buf); err == nil || !strings.Contains(err.Error(), "not a findings index") {
		t.Fatalf("foreign magic error = %v", err)
	}
	buf.Reset()
	buf.Write(frame.New([]byte{indexMagic, indexVersion + 1, 0}))
	if _, err := ReadFrom(&buf); err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Fatalf("newer version error = %v", err)
	}
}

func TestBaselineRoundTripAndDiff(t *testing.T) {
	idx := &Index{Findings: []Finding{
		{Detector: DetectorGCatch, File: "a/a.go", Function: "f", Line: 3, Reason: "r1"},
		{Detector: DetectorGCatch, File: "a/a.go", Function: "f", Line: 9, Reason: "r2"}, // same line-free key
		{Detector: DetectorDblSend, File: "b/b.go", Function: "", Line: 7, Reason: "double send"},
	}}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, idx); err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() != 2 {
		t.Fatalf("baseline entries = %d, want 2 (line-free keys collapse)", bl.Len())
	}
	if n := bl.NewFindings(idx); len(n) != 0 {
		t.Fatalf("baseline of the index itself reports %d new findings: %v", len(n), n)
	}
	// A shifted line is not new; a new detector hit is.
	shifted := &Index{Findings: []Finding{
		{Detector: DetectorGCatch, File: "a/a.go", Function: "f", Line: 100, Reason: "r1"},
		{Detector: DetectorGoat, File: "a/a.go", Function: "g", Line: 4, Reason: "r3"},
	}}
	n := bl.NewFindings(shifted)
	if len(n) != 1 || n[0].Function != "g" {
		t.Fatalf("NewFindings = %v, want exactly the goat-like hit on g", n)
	}
	// Missing baseline file == empty baseline.
	missing, err := LoadBaselineFile(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if missing.Len() != 0 || missing.Has(idx.Findings[0]) {
		t.Fatal("missing baseline file should behave as empty")
	}
}
