package staticindex_test

// The precision/recall harness: the acceptance experiment for the
// static↔dynamic join. Ground truth is the synth corpus's planted seeds
// (leaks and hard negatives). The static half is the full detector
// suite via staticindex.Scan; the dynamic half is a simulated
// production deployment — every leaky seed is sighted with monotonic
// cross-sweep growth, every hard negative is sighted as oscillating
// congestion (the fleet is under load everywhere; only the trend
// separates the populations, per Fig 6). The combined ranker is
// Link(...).Actionable().
//
// The assertion is Pareto dominance: combined precision and recall are
// each at least the better half's, and combined precision strictly
// beats BOTH halves alone — static pays for hard negatives, dynamic
// pays for congestion, and the join dismisses both failure modes.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/staticindex"
	"repro/internal/synth"
	"repro/leakprof"
)

type harness struct {
	corpus *synth.Corpus
	idx    *staticindex.Index
	db     *report.DB
	trend  *leakprof.TrendTracker
}

func pkgOf(file string) string {
	if i := strings.IndexByte(file, '/'); i > 0 {
		return file[:i]
	}
	return ""
}

func qualify(s synth.Seed) string { return pkgOf(s.File) + "." + s.Function }

// buildHarness scans the corpus and replays four production sweeps over
// every seed: leaks grow 100→130→170→220 (each step clears the 15%
// stable band), hard negatives oscillate 100→140→90→150.
func buildHarness(tb testing.TB) *harness {
	tb.Helper()
	corpus := synth.Generate(synth.DefaultConfig())
	files := map[string]string{}
	for _, f := range corpus.Files() {
		if f.Test {
			continue
		}
		files[f.Path] = f.Content
	}
	idx := staticindex.Scan(files)
	idx.Root = "synth"

	leakTotals := []int{100, 130, 170, 220}
	congTotals := []int{100, 140, 90, 150}
	db := report.NewDB()
	trend := &leakprof.TrendTracker{}
	seeds := corpus.Seeds()
	for sweep := 0; sweep < 4; sweep++ {
		at := time.Unix(int64(1000*(sweep+1)), 0)
		var findings []*leakprof.Finding
		for i, s := range seeds {
			totals := congTotals
			if s.IsLeak {
				totals = leakTotals
			}
			findings = append(findings, &leakprof.Finding{
				Service: pkgOf(s.File),
				Op:      "send",
				// A distinct line per seed: several seeds share a file,
				// and identical locations would collide on the dedup key,
				// merging a leak's series with a neighbour's congestion.
				Location:     fmt.Sprintf("%s:%d", s.File, 100+i),
				Function:     qualify(s),
				TotalBlocked: totals[sweep],
			})
		}
		trend.Observe(at, findings)
		for _, f := range findings {
			db.File(report.Bug{
				Key: f.Key(), Service: f.Service, Op: f.Op, Location: f.Location,
				Function: f.Function, BlockedGoroutines: f.TotalBlocked, FiledAt: at,
			})
		}
	}
	return &harness{corpus: corpus, idx: idx, db: db, trend: trend}
}

// score computes precision/recall of a flagged-seed set against the
// planted ground truth.
func score(flaggedLeak, flaggedSafe, totalLeak int) (precision, recall float64) {
	flagged := flaggedLeak + flaggedSafe
	if flagged > 0 {
		precision = float64(flaggedLeak) / float64(flagged)
	}
	if totalLeak > 0 {
		recall = float64(flaggedLeak) / float64(totalLeak)
	}
	return
}

// seedMatch reports whether a ranked finding lands on the seed: same
// file, and the finding's function is the seed function either bare
// (static site) or package-qualified (dynamic-only bug).
func seedMatch(rf staticindex.RankedFinding, s synth.Seed) bool {
	if rf.File != s.File {
		return false
	}
	return rf.Function == s.Function || strings.HasSuffix(rf.Function, "."+s.Function)
}

func TestCombinedRankerDominatesEitherHalf(t *testing.T) {
	h := buildHarness(t)
	seeds := h.corpus.Seeds()
	totalLeak := 0
	for _, s := range seeds {
		if s.IsLeak {
			totalLeak++
		}
	}
	if totalLeak == 0 {
		t.Fatal("corpus planted no leaks")
	}

	// Static-only baseline: a seed is flagged if any alarm detector
	// reported its (file, function).
	staticFlagged := map[string]bool{}
	for _, f := range h.idx.Findings {
		if staticindex.IsAlarm(f.Detector) && f.Function != "" {
			staticFlagged[f.File+"\x00"+f.Function] = true
		}
	}
	var sLeak, sSafe int
	for _, s := range seeds {
		if !staticFlagged[s.File+"\x00"+s.Function] {
			continue
		}
		if s.IsLeak {
			sLeak++
		} else {
			sSafe++
		}
	}
	staticPrec, staticRec := score(sLeak, sSafe, totalLeak)

	// Dynamic-only baseline: every filed bug is an alarm. All seeds were
	// sighted, so recall is perfect and congestion is the precision cost.
	var dLeak, dSafe int
	for si, s := range seeds {
		if _, ok := h.db.Get(pkgOf(s.File) + "\x00send\x00" + fmt.Sprintf("%s:%d", s.File, 100+si)); !ok {
			t.Fatalf("seed %s/%s never filed", s.File, s.Function)
		}
		if s.IsLeak {
			dLeak++
		} else {
			dSafe++
		}
	}
	dynPrec, dynRec := score(dLeak, dSafe, totalLeak)

	// Combined: the cross-linker's actionable set.
	rep := staticindex.Link(h.idx, h.db, h.trend.Verdict)
	act := rep.Actionable()
	var cLeak, cSafe int
	for _, s := range seeds {
		hit := false
		for _, rf := range act {
			if seedMatch(rf, s) {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if s.IsLeak {
			cLeak++
		} else {
			cSafe++
		}
	}
	combPrec, combRec := score(cLeak, cSafe, totalLeak)

	t.Logf("static-only:  precision=%.3f recall=%.3f (flagged %d leaks, %d safe of %d seeds)", staticPrec, staticRec, sLeak, sSafe, len(seeds))
	t.Logf("dynamic-only: precision=%.3f recall=%.3f", dynPrec, dynRec)
	t.Logf("combined:     precision=%.3f recall=%.3f", combPrec, combRec)

	// The corpus must make both halves imperfect, or dominance is vacuous.
	if staticPrec >= 1 {
		t.Fatal("static baseline has perfect precision; the hard negatives are not doing their job")
	}
	if dynPrec >= 1 {
		t.Fatal("dynamic baseline has perfect precision; congestion sightings are not doing their job")
	}

	// Pareto dominance, strict on precision against both halves.
	if combPrec <= staticPrec || combPrec <= dynPrec {
		t.Errorf("combined precision %.3f must strictly beat static %.3f and dynamic %.3f", combPrec, staticPrec, dynPrec)
	}
	if combRec < staticRec || combRec < dynRec {
		t.Errorf("combined recall %.3f must be at least static %.3f and dynamic %.3f", combRec, staticRec, dynRec)
	}
}

func TestSuppressionsNeverCoverPlantedLeaks(t *testing.T) {
	h := buildHarness(t)
	rep := staticindex.Link(h.idx, h.db, h.trend.Verdict)
	sup := rep.Suppressions()
	suppressed := map[string]bool{}
	for _, fn := range sup.Functions() {
		suppressed[fn] = true
	}
	for _, s := range h.corpus.Seeds() {
		if s.IsLeak && suppressed[qualify(s)] {
			t.Errorf("suppression list covers planted leak %s", qualify(s))
		}
	}
	// And it must actually suppress something: the corpus's hard
	// negatives oscillate, so the static alarms on them are demoted.
	if sup.Len() == 0 {
		t.Error("no suppressions generated; hard negatives should have been demoted")
	}
}

// BenchmarkStaticIndex measures the full detector-suite scan over the
// synth corpus — the throughput of the staticindex driver itself.
func BenchmarkStaticIndex(b *testing.B) {
	corpus := synth.Generate(synth.DefaultConfig())
	files := map[string]string{}
	var bytes int64
	for _, f := range corpus.Files() {
		if f.Test {
			continue
		}
		files[f.Path] = f.Content
		bytes += int64(len(f.Content))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := staticindex.Scan(files)
		if len(idx.Findings) == 0 {
			b.Fatal("no findings")
		}
	}
}
