package staticindex

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/report"
	"repro/leakprof"
)

// Site is one static-alarm site: the index's findings grouped by
// (file, function, line-for-site-lints), the granularity production
// bugs join at.
type Site struct {
	// File and Function locate the site; Function is empty for the
	// astcheck site lints, which are joined by line instead.
	File     string
	Function string
	// Line is the first flagged line at the site.
	Line int
	// Detectors lists the alarm detectors that flagged the site, sorted.
	Detectors []string
	// Reasons holds one representative reason per detector, aligned with
	// Detectors.
	Reasons []string
	// Transient marks sites the transient-select annotation covers:
	// production sightings there are expected and harmless.
	Transient bool
}

// Alarm renders the site's static annotation the way filed bugs carry
// it: "detector1,detector2: reason".
func (s *Site) Alarm() string {
	if len(s.Detectors) == 0 {
		return ""
	}
	return strings.Join(s.Detectors, ",") + ": " + s.Reasons[0]
}

// RankedFinding is one evidence-ranked result of the cross-link.
type RankedFinding struct {
	Site
	// Confirmed marks sites production has sighted.
	Confirmed bool
	// Sightings, BlockedGoroutines, and Impact accumulate the linked
	// bugs' production evidence (max blocked / max impact across bugs).
	Sightings         int
	BlockedGoroutines int
	Impact            float64
	// Trend is the strongest linked trend verdict (growing dominates,
	// then stable, unknown, oscillating — a site both growing and
	// oscillating across services is still a leak somewhere).
	Trend leakprof.TrendVerdict
	// BugKeys are the linked production bug keys, sorted.
	BugKeys []string
}

// Report is the cross-linker's output: the three populations the
// static↔dynamic join produces.
type Report struct {
	// Confirmed are static alarms with production sightings, sorted by
	// evidence: sightings, then blocked goroutines, then trend.
	Confirmed []RankedFinding
	// Unsighted are static alarms production has never sighted — the
	// suppression candidates — sorted by file/function.
	Unsighted []RankedFinding
	// DynamicOnly are production bugs no static detector flagged:
	// the dynamic half earning its keep.
	DynamicOnly []report.Bug
	// verdict is retained for DynamicOnly trend lookups in Actionable.
	verdict func(key string) leakprof.TrendVerdict
}

// TrendFunc adapts a TrendTracker to the linker; nil means no trend
// evidence (every verdict TrendUnknown).
type TrendFunc func(key string) leakprof.TrendVerdict

// Sites groups the index's alarm findings into join-ready sites.
// Transient-select annotations do not create sites; they mark
// co-located sites (same file, same line) as transient.
func (idx *Index) Sites() []*Site {
	type key struct {
		file, fn string
		line     int
	}
	sites := map[key]*Site{}
	order := []*Site{}
	for _, f := range idx.Findings {
		if !IsAlarm(f.Detector) {
			continue
		}
		k := key{file: f.File, fn: f.Function}
		if f.Function == "" {
			k.line = f.Line // site lints join by line
		}
		s, ok := sites[k]
		if !ok {
			s = &Site{File: f.File, Function: f.Function, Line: f.Line}
			sites[k] = s
			order = append(order, s)
		}
		if f.Line < s.Line {
			s.Line = f.Line
		}
		if i := sort.SearchStrings(s.Detectors, f.Detector); i == len(s.Detectors) || s.Detectors[i] != f.Detector {
			s.Detectors = append(s.Detectors, "")
			copy(s.Detectors[i+1:], s.Detectors[i:])
			s.Detectors[i] = f.Detector
			s.Reasons = append(s.Reasons, "")
			copy(s.Reasons[i+1:], s.Reasons[i:])
			s.Reasons[i] = f.Reason
		}
	}
	// Second pass: transient annotations exculpate sites on their line.
	for _, f := range idx.Findings {
		if f.Detector != DetectorTransient {
			continue
		}
		for _, s := range order {
			if s.File == f.File && (s.Line == f.Line || (s.Function != "" && f.Function == s.Function)) {
				s.Transient = true
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].File != order[j].File {
			return order[i].File < order[j].File
		}
		if order[i].Function != order[j].Function {
			return order[i].Function < order[j].Function
		}
		return order[i].Line < order[j].Line
	})
	return order
}

// AlarmFunc returns the lookup cmd/leakprof wires into
// Reporter.StaticAlarm: given a production finding's function and
// location ("file:line"), it returns the site's static annotation, or
// "" when no detector flagged it.
func (idx *Index) AlarmFunc() func(function, location string) string {
	sites := idx.Sites()
	return func(function, location string) string {
		file, line := splitLocation(location)
		for _, s := range sites {
			if s.matches(function, file, line) {
				return s.Alarm()
			}
		}
		return ""
	}
}

// matches reports whether a production sighting (function, file, line)
// lands on the site. Production function names are package-qualified
// ("svc003.leaky5", "pkg.(*T).run"); static names are bare declarations.
// Paths match on slash-boundary suffixes, so a repo-relative index joins
// against absolute production paths.
func (s *Site) matches(function, file string, line int) bool {
	if !pathsMatch(s.File, file) {
		return false
	}
	if s.Function == "" {
		return s.Line == line
	}
	return functionMatches(function, s.Function)
}

func functionMatches(prod, static string) bool {
	if prod == "" || static == "" {
		return false
	}
	return prod == static || strings.HasSuffix(prod, "."+static)
}

// pathsMatch reports whether one path is a slash-boundary suffix of the
// other ("svc003/file1.go" joins "/builds/repo/svc003/file1.go").
func pathsMatch(a, b string) bool {
	if a == "" || b == "" {
		return false
	}
	if a == b {
		return true
	}
	if strings.HasSuffix(a, "/"+b) || strings.HasSuffix(b, "/"+a) {
		return true
	}
	return false
}

func splitLocation(loc string) (file string, line int) {
	i := strings.LastIndexByte(loc, ':')
	if i < 0 {
		return loc, 0
	}
	n, err := strconv.Atoi(loc[i+1:])
	if err != nil {
		return loc, 0
	}
	return loc[:i], n
}

// trendRank orders verdicts by how alarming they are.
func trendRank(v leakprof.TrendVerdict) int {
	switch v {
	case leakprof.TrendGrowing:
		return 3
	case leakprof.TrendStable:
		return 2
	case leakprof.TrendUnknown:
		return 1
	default: // TrendOscillating: production says congestion
		return 0
	}
}

// Link joins the index against the production bug database and trend
// verdicts. Every bug is matched against every alarm site (function
// match for analyzer findings, file:line match for site lints); the
// result partitions the world into production-confirmed alarms (ranked
// by evidence), never-sighted alarms (suppression candidates), and
// dynamic-only bugs.
func Link(idx *Index, db *report.DB, verdict TrendFunc) *Report {
	if verdict == nil {
		verdict = func(string) leakprof.TrendVerdict { return leakprof.TrendUnknown }
	}
	sites := idx.Sites()
	ranked := make([]*RankedFinding, len(sites))
	for i, s := range sites {
		ranked[i] = &RankedFinding{Site: *s, Trend: leakprof.TrendUnknown}
	}

	rep := &Report{verdict: verdict}
	for _, bug := range db.All() {
		file, line := splitLocation(bug.Location)
		matched := false
		for i, s := range sites {
			if !s.matches(bug.Function, file, line) {
				continue
			}
			matched = true
			rf := ranked[i]
			rf.Confirmed = true
			rf.Sightings += bug.Sightings
			if bug.BlockedGoroutines > rf.BlockedGoroutines {
				rf.BlockedGoroutines = bug.BlockedGoroutines
			}
			if bug.Impact > rf.Impact {
				rf.Impact = bug.Impact
			}
			// The first linked bug sets the trend outright — the zero
			// value TrendUnknown outranks Oscillating and must not mask
			// it — later links take the strongest verdict.
			if v := verdict(bug.Key); len(rf.BugKeys) == 0 || trendRank(v) > trendRank(rf.Trend) {
				rf.Trend = v
			}
			rf.BugKeys = append(rf.BugKeys, bug.Key)
		}
		if !matched {
			rep.DynamicOnly = append(rep.DynamicOnly, bug)
		}
	}

	for _, rf := range ranked {
		sort.Strings(rf.BugKeys)
		if rf.Confirmed {
			rep.Confirmed = append(rep.Confirmed, *rf)
		} else {
			rep.Unsighted = append(rep.Unsighted, *rf)
		}
	}
	sort.Slice(rep.Confirmed, func(i, j int) bool {
		a, b := &rep.Confirmed[i], &rep.Confirmed[j]
		if a.Sightings != b.Sightings {
			return a.Sightings > b.Sightings
		}
		if a.BlockedGoroutines != b.BlockedGoroutines {
			return a.BlockedGoroutines > b.BlockedGoroutines
		}
		if ta, tb := trendRank(a.Trend), trendRank(b.Trend); ta != tb {
			return ta > tb
		}
		return a.File+"\x00"+a.Function < b.File+"\x00"+b.Function
	})
	return rep
}

// Actionable is the evidence-ranked combined alarm set — the product of
// the static↔dynamic join that the precision/recall harness scores
// against either half alone:
//
//   - confirmed static alarms whose trend is not oscillating and whose
//     site is not transient (production sighted them, and the sightings
//     look like a leak, not diurnal congestion);
//   - dynamic-only bugs whose trend verdict is growing (no static
//     detector saw them, but monotonic cross-sweep growth is the
//     strongest dynamic evidence there is).
//
// Never-sighted static alarms are excluded by construction — they are
// the suppression candidates (see Suppressions).
func (r *Report) Actionable() []RankedFinding {
	var out []RankedFinding
	for _, rf := range r.Confirmed {
		if rf.Trend == leakprof.TrendOscillating || rf.Transient {
			continue
		}
		out = append(out, rf)
	}
	for _, bug := range r.DynamicOnly {
		if r.verdict(bug.Key) != leakprof.TrendGrowing {
			continue
		}
		file, line := splitLocation(bug.Location)
		out = append(out, RankedFinding{
			Site:              Site{File: file, Function: bug.Function, Line: line},
			Confirmed:         true,
			Sightings:         bug.Sightings,
			BlockedGoroutines: bug.BlockedGoroutines,
			Impact:            bug.Impact,
			Trend:             leakprof.TrendGrowing,
			BugKeys:           []string{bug.Key},
		})
	}
	return out
}

// Render formats one ranked finding as a report line.
func (rf *RankedFinding) Render() string {
	evidence := "never sighted in production"
	if rf.Confirmed {
		evidence = fmt.Sprintf("sightings=%d blocked=%d trend=%s", rf.Sightings, rf.BlockedGoroutines, rf.Trend)
	}
	det := strings.Join(rf.Detectors, ",")
	if det == "" {
		det = "dynamic-only"
	}
	fn := rf.Function
	if fn == "" {
		fn = "-"
	}
	return fmt.Sprintf("%s:%d %s [%s] %s", rf.File, rf.Line, fn, det, evidence)
}
