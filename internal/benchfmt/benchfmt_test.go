package benchfmt

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro/leakprof
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepCriticalPath/attached-sync-every-sweep         	      30	  70201472 ns/op	         1.000 fsyncs/op	         3.995 journal-KB/op	 9150141 B/op	  640720 allocs/op
BenchmarkSweepCriticalPath/detached-group-commit             	      30	     70683 ns/op	         0.06667 fsyncs/op	         0.2776 journal-KB/op	   27294 B/op	     122 allocs/op
BenchmarkStateJournal/delta-append-8     	     100	   1200000 ns/op	         3.1 journal-KB/op	    4096 B/op	     132 allocs/op
--- BENCH: BenchmarkSomething
    some_test.go:1: log line that must not parse
PASS
ok  	repro/leakprof	9.927s
`
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	first := results[0]
	if first.Name != "BenchmarkSweepCriticalPath/attached-sync-every-sweep" {
		t.Errorf("name = %q", first.Name)
	}
	if first.Iterations != 30 || first.NsPerOp != 70201472 || first.BytesPerOp != 9150141 || first.AllocsPerOp != 640720 {
		t.Errorf("standard metrics = %+v", first)
	}
	if first.Metrics["fsyncs/op"] != 1.0 || first.Metrics["journal-KB/op"] != 3.995 {
		t.Errorf("custom metrics = %+v", first.Metrics)
	}
	if results[1].Metrics["fsyncs/op"] != 0.06667 {
		t.Errorf("detached fsyncs/op = %v", results[1].Metrics["fsyncs/op"])
	}
	if results[2].Name != "BenchmarkStateJournal/delta-append-8" {
		t.Errorf("third result = %+v", results[2])
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	out := "BenchmarkBroken   notanumber   12 ns/op\n" +
		"BenchmarkTooShort 5\n" +
		"BenchmarkOK 10 5 ns/op\n"
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkOK" || results[0].NsPerOp != 5 {
		t.Errorf("results = %+v, want only BenchmarkOK", results)
	}
}
