// Package benchfmt parses `go test -bench` output into a machine-
// readable form, so CI can publish the benchmark trajectory as a JSON
// artifact instead of a text blob that only humans diff. It understands
// the standard result line —
//
//	BenchmarkName/sub-8   30   70201472 ns/op   9150141 B/op   640720 allocs/op
//
// — including the custom metrics ReportMetric emits (fsyncs/op,
// journal-KB/op), which land in the Metrics map.
package benchfmt

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark line in exportable form.
type Result struct {
	// Name is the full benchmark name, sub-benchmarks included.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, and AllocsPerOp are the standard metrics;
	// zero when the line did not report them.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries every other unit the line reported (custom
	// b.ReportMetric units like "fsyncs/op"), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` output and returns every benchmark result
// line, in order. Non-benchmark lines (package headers, PASS/ok, test
// logs) are skipped; a malformed benchmark line is skipped rather than
// failing the artifact build.
func Parse(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var out []Result
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// parseLine decodes one "Benchmark... N value unit [value unit]..." line.
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Shortest valid line: name, iterations, value, unit.
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	// The rest are value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = value
		case "B/op":
			res.BytesPerOp = value
		case "allocs/op":
			res.AllocsPerOp = value
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = value
		}
	}
	return res, true
}
