package features

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

const mpSrc = `package p

import "sync"

func asyncRun(f func()) { go f() }

func producer(out chan int) chan int {
	unbuf := make(chan int)
	one := make(chan int, 1)
	big := make(chan int, 16)
	dyn := make(chan int, cap(out))
	go func() {
		unbuf <- 1
		one <- 2
		big <- 3
		dyn <- 4
	}()
	asyncRun(func() {
		<-unbuf
	})
	v := <-one
	_ = v
	close(big)
	select {
	case <-big:
	case <-dyn:
	case out <- 9:
	}
	select {
	case <-one:
	default:
	}
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
	return dyn
}
`

func scanOne(t *testing.T, src string, test bool) (*TableII, *TableI) {
	t.Helper()
	sc := &Scanner{Wrappers: []string{"asyncRun"}}
	path := "pkg/a.go"
	if test {
		path = "pkg/a_test.go"
	}
	t2, t1, err := sc.Scan([]SourceFile{{Path: path, Content: src, Test: test}})
	if err != nil {
		t.Fatal(err)
	}
	return t2, t1
}

func TestScanTableIICounters(t *testing.T) {
	t2, _ := scanOne(t, mpSrc, false)
	s := t2.Source
	if s.NamedFuncs != 2 {
		t.Errorf("named funcs = %d, want 2", s.NamedFuncs)
	}
	if s.AnonymousFuncs != 2 { // the go literal and the asyncRun argument
		t.Errorf("anonymous funcs = %d, want 2", s.AnonymousFuncs)
	}
	if s.FuncsWithChanParam != 1 { // producer(out chan int)
		t.Errorf("chan-param funcs = %d, want 1", s.FuncsWithChanParam)
	}
	if s.GoStmts != 2 { // go f() inside wrapper + go func(){}
		t.Errorf("go stmts = %d, want 2", s.GoStmts)
	}
	if s.WrapperGoroutines != 1 {
		t.Errorf("wrapper goroutines = %d, want 1", s.WrapperGoroutines)
	}
	if s.ChanUnbuffered != 1 || s.ChanSize1 != 1 || s.ChanConstBuf != 1 || s.ChanDynamicBuf != 1 {
		t.Errorf("chan classes = %d/%d/%d/%d, want 1 each",
			s.ChanUnbuffered, s.ChanSize1, s.ChanConstBuf, s.ChanDynamicBuf)
	}
	if s.TotalChanAllocs() != 4 {
		t.Errorf("total allocs = %d", s.TotalChanAllocs())
	}
	if s.Sends != 5 { // 4 sends in goroutine + select send arm
		t.Errorf("sends = %d, want 5", s.Sends)
	}
	if s.Closes != 1 {
		t.Errorf("closes = %d, want 1", s.Closes)
	}
	if s.SelectBlocking != 1 || s.SelectNonBlocking != 1 {
		t.Errorf("selects = %d blocking / %d non-blocking, want 1/1",
			s.SelectBlocking, s.SelectNonBlocking)
	}
	if len(s.BlockingSelectArms) != 1 || s.BlockingSelectArms[0] != 3 {
		t.Errorf("blocking select arms = %v, want [3]", s.BlockingSelectArms)
	}
}

func TestScanSeparatesTests(t *testing.T) {
	sc := &Scanner{}
	t2, _, err := sc.Scan([]SourceFile{
		{Path: "pkg/a.go", Content: "package p\nfunc f() { ch := make(chan int); close(ch) }\n"},
		{Path: "pkg/a_test.go", Content: "package p\nfunc g() { ch := make(chan int, 1); close(ch) }\n", Test: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if t2.Source.ChanUnbuffered != 1 || t2.Source.ChanSize1 != 0 {
		t.Errorf("source chans = %+v", t2.Source)
	}
	if t2.Tests.ChanSize1 != 1 || t2.Tests.ChanUnbuffered != 0 {
		t.Errorf("test chans = %+v", t2.Tests)
	}
}

func TestTableIClassification(t *testing.T) {
	sc := &Scanner{}
	_, t1, err := sc.Scan([]SourceFile{
		{Path: "mp/a.go", Content: "package mp\nfunc f() { ch := make(chan int); close(ch) }\n"},
		{Path: "sm/a.go", Content: "package sm\nimport \"sync\"\nfunc f() { var mu sync.Mutex; mu.Lock() }\n"},
		{Path: "both/a.go", Content: "package both\nimport \"sync\"\nfunc f() { var mu sync.Mutex; mu.Lock(); ch := make(chan int); close(ch) }\n"},
		{Path: "plain/a.go", Content: "package plain\nfunc f() int { return 1 }\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := t1.RowAll().Packages; got != 4 {
		t.Errorf("all packages = %d", got)
	}
	if got := t1.RowMP().Packages; got != 2 { // mp + both
		t.Errorf("MP packages = %d, want 2", got)
	}
	if got := t1.RowSM().Packages; got != 2 { // sm + both
		t.Errorf("SM packages = %d, want 2", got)
	}
	if got := t1.RowBoth().Packages; got != 1 {
		t.Errorf("Both packages = %d, want 1", got)
	}
}

func TestArmStatistics(t *testing.T) {
	s := FileStats{BlockingSelectArms: []int{2, 2, 2, 3, 3, 4, 11}}
	if got := s.ArmPercentile(50); got != 2 {
		t.Errorf("P50 = %d, want 2", got)
	}
	if got := s.ArmPercentile(90); got != 4 {
		t.Errorf("P90 = %d, want 4", got)
	}
	if got := s.ArmMax(); got != 11 {
		t.Errorf("max = %d", got)
	}
	if got := s.ArmMode(); got != 2 {
		t.Errorf("mode = %d", got)
	}
	var empty FileStats
	if empty.ArmPercentile(50) != 0 || empty.ArmMax() != 0 || empty.ArmMode() != 0 {
		t.Error("empty stats should report zeros")
	}
}

// TestScanSyntheticCorpusShape verifies the generator and scanner agree:
// scanning a generated corpus reproduces Table II's ratio shapes.
func TestScanSyntheticCorpusShape(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Packages = 400
	cfg.FracMP, cfg.FracSM, cfg.FracBoth = 0.2, 0.2, 0.1
	corpus := synth.Generate(cfg)
	var files []SourceFile
	for _, f := range corpus.Files() {
		files = append(files, SourceFile{Path: f.Path, Content: f.Content, Test: f.Test})
	}
	sc := &Scanner{Wrappers: []string{"asyncRun"}}
	t2, t1, err := sc.Scan(files)
	if err != nil {
		t.Fatal(err)
	}
	s := t2.Source
	if s.TotalChanAllocs() == 0 || s.TotalGoroutineCreation() == 0 {
		t.Fatal("corpus has no concurrency features")
	}
	// Shape checks mirroring Table II:
	// unbuffered is the largest alloc class (45% of allocs);
	unb := float64(s.ChanUnbuffered) / float64(s.TotalChanAllocs())
	if unb < 0.30 || unb > 0.60 {
		t.Errorf("unbuffered fraction = %.2f, want ~0.45", unb)
	}
	// wrappers account for a meaningful minority of goroutine creation;
	wfrac := float64(s.WrapperGoroutines) / float64(s.TotalGoroutineCreation())
	if wfrac < 0.05 || wfrac > 0.5 {
		t.Errorf("wrapper fraction = %.2f, want ~0.1-0.4", wfrac)
	}
	// blocking selects dominate (74%);
	bfrac := float64(s.SelectBlocking) / float64(s.TotalSelects())
	if bfrac < 0.55 {
		t.Errorf("blocking-select fraction = %.2f, want >= 0.55", bfrac)
	}
	// select-arm stats: P50 = 2, mode = 2.
	if got := s.ArmPercentile(50); got != 2 {
		t.Errorf("P50 arms = %d, want 2", got)
	}
	if got := s.ArmMode(); got != 2 {
		t.Errorf("mode arms = %d, want 2", got)
	}
	// Tests carry channel traffic of their own (Table II's test column).
	if t2.Tests.Receives == 0 || t2.Tests.Sends == 0 || t2.Tests.TotalChanAllocs() == 0 {
		t.Errorf("test column empty: %+v", t2.Tests)
	}
	// Table I: MP row must include the both-paradigm packages.
	if t1.RowMP().Packages < t1.RowBoth().Packages {
		t.Error("MP row excludes both-paradigm packages")
	}
	if t1.RowAll().Packages != cfg.Packages {
		t.Errorf("total packages = %d, want %d", t1.RowAll().Packages, cfg.Packages)
	}
}

func TestFormatters(t *testing.T) {
	t2, t1 := scanOne(t, mpSrc, false)
	out2 := FormatTableII(t2)
	for _, want := range []string{"Goroutine creation", "Unbuffered", "P50", "Mode"} {
		if !strings.Contains(out2, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
	out1 := FormatTableI(t1)
	for _, want := range []string{"Message passing", "Entire corpus"} {
		if !strings.Contains(out1, want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
}
