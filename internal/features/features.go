// Package features scans Go source for the concurrency-feature statistics
// the paper reports about Uber's monorepo: the package-level paradigm
// split of Table I and the per-construct counts of Table II (goroutine
// creation, channel allocation buffer classes, channel operations, select
// statements and their case-count percentiles).
package features

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
)

// SourceFile is one input file.
type SourceFile struct {
	// Path is the repo-relative path; its first segment is the package
	// directory for Table I grouping.
	Path string
	// Content is the Go source.
	Content string
	// Test marks _test.go files.
	Test bool
}

// FileStats are the Table II counters for a set of files.
type FileStats struct {
	Files int
	ELoC  int

	AnonymousFuncs      int
	NamedFuncs          int
	FuncsWithChanParam  int
	FuncsWithChanReturn int

	GoStmts            int // goroutine creation via the go keyword
	WrapperGoroutines  int // goroutine creation via recognised wrappers
	ChanUnbuffered     int
	ChanSize1          int
	ChanConstBuf       int // constant buffer > 1
	ChanDynamicBuf     int // dynamically sized buffer
	Sends              int
	Receives           int
	Closes             int
	SelectBlocking     int
	SelectNonBlocking  int
	BlockingSelectArms []int // case-arm counts of blocking selects
}

// TotalGoroutineCreation sums both goroutine-creation forms.
func (s *FileStats) TotalGoroutineCreation() int { return s.GoStmts + s.WrapperGoroutines }

// TotalChanAllocs sums the four buffer classes.
func (s *FileStats) TotalChanAllocs() int {
	return s.ChanUnbuffered + s.ChanSize1 + s.ChanConstBuf + s.ChanDynamicBuf
}

// TotalSelects sums blocking and non-blocking selects.
func (s *FileStats) TotalSelects() int { return s.SelectBlocking + s.SelectNonBlocking }

// ArmPercentile returns the p-th percentile (0 < p <= 100) of blocking-
// select case counts, or 0 when no blocking selects were seen.
func (s *FileStats) ArmPercentile(p float64) int {
	if len(s.BlockingSelectArms) == 0 {
		return 0
	}
	arms := append([]int(nil), s.BlockingSelectArms...)
	sort.Ints(arms)
	idx := int(p/100*float64(len(arms))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(arms) {
		idx = len(arms) - 1
	}
	return arms[idx]
}

// ArmMax returns the largest blocking-select case count.
func (s *FileStats) ArmMax() int {
	max := 0
	for _, a := range s.BlockingSelectArms {
		if a > max {
			max = a
		}
	}
	return max
}

// ArmMode returns the most common blocking-select case count.
func (s *FileStats) ArmMode() int {
	counts := map[int]int{}
	best, bestN := 0, 0
	for _, a := range s.BlockingSelectArms {
		counts[a]++
		if counts[a] > bestN || (counts[a] == bestN && a < best) {
			best, bestN = a, counts[a]
		}
	}
	return best
}

// TableII pairs source and test counters, mirroring the paper's columns.
type TableII struct {
	Source FileStats
	Tests  FileStats
}

// PackageClass is a package's Table I classification.
type PackageClass struct {
	Name        string
	MP          bool // uses message passing (channels/select)
	SM          bool // uses shared memory (sync/atomic)
	SourceFiles int
	TestFiles   int
	SourceELoC  int
	TestELoC    int
}

// TableI is the paradigm distribution of Table I.
type TableI struct {
	Packages []PackageClass
}

// Row aggregates one Table I row.
type Row struct {
	Packages    int
	SourceFiles int
	TestFiles   int
	SourceELoC  int
	TestELoC    int
}

// RowMP, RowSM, RowBoth, RowAll compute the four Table I rows. Note that,
// as in the paper, the MP and SM rows both include packages using both
// paradigms; the Both row is their intersection.
func (t *TableI) RowMP() Row   { return t.row(func(p PackageClass) bool { return p.MP }) }
func (t *TableI) RowSM() Row   { return t.row(func(p PackageClass) bool { return p.SM }) }
func (t *TableI) RowBoth() Row { return t.row(func(p PackageClass) bool { return p.MP && p.SM }) }
func (t *TableI) RowAll() Row  { return t.row(func(PackageClass) bool { return true }) }

func (t *TableI) row(pred func(PackageClass) bool) Row {
	var r Row
	for _, p := range t.Packages {
		if !pred(p) {
			continue
		}
		r.Packages++
		r.SourceFiles += p.SourceFiles
		r.TestFiles += p.TestFiles
		r.SourceELoC += p.SourceELoC
		r.TestELoC += p.TestELoC
	}
	return r
}

// Scanner configures feature scanning.
type Scanner struct {
	// Wrappers are function names recognised as goroutine-creation
	// wrappers (Table II counts wrapper-based creation separately).
	// Both bare names ("asyncRun") and qualified names ("pool.Go")
	// match.
	Wrappers []string
}

// Scan parses and scans all files, producing Table II counters and the
// Table I package classification. Files that fail to parse are skipped.
func (sc *Scanner) Scan(files []SourceFile) (*TableII, *TableI, error) {
	t2 := &TableII{}
	pkgs := map[string]*PackageClass{}
	fset := token.NewFileSet()
	for _, f := range files {
		ast1, err := parser.ParseFile(fset, f.Path, f.Content, 0)
		if err != nil {
			continue
		}
		stats := &t2.Source
		if f.Test {
			stats = &t2.Tests
		}
		usesMP, usesSM := sc.scanFile(ast1, stats)
		stats.Files++
		eloc := countELoC(f.Content)
		stats.ELoC += eloc

		dir := packageDir(f.Path)
		pc := pkgs[dir]
		if pc == nil {
			pc = &PackageClass{Name: dir}
			pkgs[dir] = pc
		}
		pc.MP = pc.MP || usesMP
		pc.SM = pc.SM || usesSM
		if f.Test {
			pc.TestFiles++
			pc.TestELoC += eloc
		} else {
			pc.SourceFiles++
			pc.SourceELoC += eloc
		}
	}
	t1 := &TableI{}
	names := make([]string, 0, len(pkgs))
	for n := range pkgs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t1.Packages = append(t1.Packages, *pkgs[n])
	}
	return t2, t1, nil
}

func packageDir(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return "."
}

// scanFile walks one file, updating stats and reporting paradigm use.
func (sc *Scanner) scanFile(f *ast.File, s *FileStats) (usesMP, usesSM bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			s.NamedFuncs++
			if x.Type != nil {
				if hasChanParam(x.Type.Params) {
					s.FuncsWithChanParam++
					usesMP = true
				}
				if hasChanParam(x.Type.Results) {
					s.FuncsWithChanReturn++
					usesMP = true
				}
			}
		case *ast.FuncLit:
			s.AnonymousFuncs++
		case *ast.GoStmt:
			s.GoStmts++
		case *ast.CallExpr:
			if sc.isWrapperCall(x) {
				s.WrapperGoroutines++
			}
			if fun, ok := x.Fun.(*ast.Ident); ok && fun.Name == "close" && len(x.Args) == 1 {
				s.Closes++
				usesMP = true
			}
			if cls, ok := classifyMakeChan(x); ok {
				usesMP = true
				switch cls {
				case chanUnbuffered:
					s.ChanUnbuffered++
				case chanSize1:
					s.ChanSize1++
				case chanConst:
					s.ChanConstBuf++
				case chanDynamic:
					s.ChanDynamicBuf++
				}
			}
		case *ast.SendStmt:
			s.Sends++
			usesMP = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.Receives++
				usesMP = true
			}
		case *ast.SelectStmt:
			usesMP = true
			arms, hasDefault := 0, false
			for _, clause := range x.Body.List {
				if comm, ok := clause.(*ast.CommClause); ok {
					if comm.Comm == nil {
						hasDefault = true
					} else {
						arms++
					}
				}
			}
			if hasDefault {
				s.SelectNonBlocking++
			} else {
				s.SelectBlocking++
				s.BlockingSelectArms = append(s.BlockingSelectArms, arms)
			}
		case *ast.SelectorExpr:
			if pkg, ok := x.X.(*ast.Ident); ok {
				if pkg.Name == "sync" || pkg.Name == "atomic" {
					usesSM = true
				}
			}
		case *ast.RangeStmt:
			// range over a channel is a receive loop; counted via the
			// paradigm only (Table II's receive count is syntactic <-).
		}
		return true
	})
	return usesMP, usesSM
}

// hasChanParam reports whether a field list contains a channel-typed
// entry (directly, not nested inside composite types).
func hasChanParam(fl *ast.FieldList) bool {
	if fl == nil {
		return false
	}
	for _, field := range fl.List {
		if _, ok := field.Type.(*ast.ChanType); ok {
			return true
		}
	}
	return false
}

type chanClass int

const (
	chanUnbuffered chanClass = iota
	chanSize1
	chanConst
	chanDynamic
)

// classifyMakeChan classifies make(chan T[, n]) calls into Table II's
// buffer classes.
func classifyMakeChan(call *ast.CallExpr) (chanClass, bool) {
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "make" || len(call.Args) == 0 {
		return 0, false
	}
	if _, isChan := call.Args[0].(*ast.ChanType); !isChan {
		return 0, false
	}
	if len(call.Args) == 1 {
		return chanUnbuffered, true
	}
	if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Kind == token.INT {
		switch lit.Value {
		case "0":
			return chanUnbuffered, true
		case "1":
			return chanSize1, true
		default:
			return chanConst, true
		}
	}
	return chanDynamic, true
}

func (sc *Scanner) isWrapperCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			name = pkg.Name + "." + fun.Sel.Name
		} else {
			name = fun.Sel.Name
		}
	default:
		return false
	}
	for _, w := range sc.Wrappers {
		if name == w {
			return true
		}
	}
	return false
}

// countELoC counts non-blank, non-comment-only lines.
func countELoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

// FormatTableII renders the scan result in the paper's Table II layout.
func FormatTableII(t *TableII) string {
	var b strings.Builder
	row := func(label string, src, tst int) {
		fmt.Fprintf(&b, "%-36s %10d %10d\n", label, src, tst)
	}
	b.WriteString("Feature                                  Source      Tests\n")
	b.WriteString("Functions\n")
	row("  Anonymous", t.Source.AnonymousFuncs, t.Tests.AnonymousFuncs)
	row("  Named", t.Source.NamedFuncs, t.Tests.NamedFuncs)
	row("  With channel parameter(s)", t.Source.FuncsWithChanParam, t.Tests.FuncsWithChanParam)
	row("  With channel return type(s)", t.Source.FuncsWithChanReturn, t.Tests.FuncsWithChanReturn)
	b.WriteString("Goroutine creation\n")
	row("  Via go keyword", t.Source.GoStmts, t.Tests.GoStmts)
	row("  Via wrapper function", t.Source.WrapperGoroutines, t.Tests.WrapperGoroutines)
	row("  Total", t.Source.TotalGoroutineCreation(), t.Tests.TotalGoroutineCreation())
	b.WriteString("Channel allocations via make(chan)\n")
	row("  Unbuffered", t.Source.ChanUnbuffered, t.Tests.ChanUnbuffered)
	row("  Size-1 buffers", t.Source.ChanSize1, t.Tests.ChanSize1)
	row("  Constant (>1) buffers", t.Source.ChanConstBuf, t.Tests.ChanConstBuf)
	row("  Dynamically sized buffers", t.Source.ChanDynamicBuf, t.Tests.ChanDynamicBuf)
	row("  Total", t.Source.TotalChanAllocs(), t.Tests.TotalChanAllocs())
	b.WriteString("Channel operations\n")
	row("  Sends: c<-", t.Source.Sends, t.Tests.Sends)
	row("  Receives: <-c", t.Source.Receives, t.Tests.Receives)
	row("  close", t.Source.Closes, t.Tests.Closes)
	b.WriteString("select statements\n")
	row("  Blocking", t.Source.SelectBlocking, t.Tests.SelectBlocking)
	row("  Non-blocking", t.Source.SelectNonBlocking, t.Tests.SelectNonBlocking)
	row("  Total", t.Source.TotalSelects(), t.Tests.TotalSelects())
	b.WriteString("Overall cases in blocking select\n")
	row("  P50", t.Source.ArmPercentile(50), t.Tests.ArmPercentile(50))
	row("  P90", t.Source.ArmPercentile(90), t.Tests.ArmPercentile(90))
	row("  Maximum", t.Source.ArmMax(), t.Tests.ArmMax())
	row("  Mode", t.Source.ArmMode(), t.Tests.ArmMode())
	return b.String()
}

// FormatTableI renders the Table I paradigm split.
func FormatTableI(t *TableI) string {
	var b strings.Builder
	b.WriteString("Paradigm              Packages   SrcFiles  SrcELoC  TestFiles  TestELoC\n")
	row := func(label string, r Row) {
		fmt.Fprintf(&b, "%-20s %9d %10d %8d %10d %9d\n",
			label, r.Packages, r.SourceFiles, r.SourceELoC, r.TestFiles, r.TestELoC)
	}
	row("Message passing", t.RowMP())
	row("Shared memory", t.RowSM())
	row("MP and SM", t.RowBoth())
	row("Entire corpus", t.RowAll())
	return b.String()
}
