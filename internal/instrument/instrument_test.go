package instrument

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const plainTest = `package svc

import "testing"

func TestThing(t *testing.T) {}
`

func TestInjectCompanionFile(t *testing.T) {
	dir := writeFiles(t, map[string]string{"a_test.go": plainTest})
	in := &Instrumenter{}
	res, err := in.Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInjected {
		t.Fatalf("status = %v", res.Status)
	}
	body, err := os.ReadFile(filepath.Join(dir, GeneratedFileName))
	if err != nil {
		t.Fatal(err)
	}
	src := string(body)
	for _, want := range []string{"package svc", "goleak.VerifyTestMain(m)", `"repro/goleak"`} {
		if !strings.Contains(src, want) {
			t.Errorf("generated file missing %q:\n%s", want, src)
		}
	}
	// The generated file must parse.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "z.go", src, 0); err != nil {
		t.Fatalf("generated file does not parse: %v", err)
	}
	// Re-instrumenting is idempotent: the companion file declares
	// TestMain with VerifyTestMain, so status becomes already.
	res, err = in.Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusAlready {
		t.Errorf("second run status = %v, want already-instrumented", res.Status)
	}
}

func TestAmendCanonicalTestMain(t *testing.T) {
	existing := `package svc

import (
	"os"
	"testing"
)

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

func TestThing(t *testing.T) {}
`
	dir := writeFiles(t, map[string]string{"main_test.go": existing})
	in := &Instrumenter{}
	res, err := in.Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusAmended {
		t.Fatalf("status = %v (%s)", res.Status, res.Detail)
	}
	body, _ := os.ReadFile(filepath.Join(dir, "main_test.go"))
	src := string(body)
	if !strings.Contains(src, "goleak.VerifyTestMain(m)") {
		t.Errorf("amended file missing call:\n%s", src)
	}
	if !strings.Contains(src, `"repro/goleak"`) {
		t.Errorf("amended file missing import:\n%s", src)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "m.go", src, 0); err != nil {
		t.Fatalf("amended file does not parse: %v\n%s", err, src)
	}
}

func TestConflictOnCustomTestMain(t *testing.T) {
	custom := `package svc

import (
	"os"
	"testing"
)

func TestMain(m *testing.M) {
	setup()
	code := m.Run()
	teardown()
	os.Exit(code)
}

func setup()    {}
func teardown() {}
`
	dir := writeFiles(t, map[string]string{"main_test.go": custom})
	in := &Instrumenter{}
	res, err := in.Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusConflict {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Detail == "" || res.File == "" {
		t.Errorf("conflict lacks context: %+v", res)
	}
	// The custom file must be untouched.
	body, _ := os.ReadFile(filepath.Join(dir, "main_test.go"))
	if string(body) != custom {
		t.Error("conflicting file was modified")
	}
}

func TestNoTests(t *testing.T) {
	dir := writeFiles(t, map[string]string{"code.go": "package svc\n"})
	in := &Instrumenter{}
	res, err := in.Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNoTests {
		t.Errorf("status = %v", res.Status)
	}
}

func TestDryRunWritesNothing(t *testing.T) {
	dir := writeFiles(t, map[string]string{"a_test.go": plainTest})
	in := &Instrumenter{DryRun: true}
	res, err := in.Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInjected {
		t.Fatalf("status = %v", res.Status)
	}
	if _, err := os.Stat(filepath.Join(dir, GeneratedFileName)); !os.IsNotExist(err) {
		t.Error("dry run wrote the companion file")
	}
}

func TestTreeInstrumentsAllPackages(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"a/a_test.go":        plainTest,
		"b/b_test.go":        strings.Replace(plainTest, "package svc", "package b", 1),
		"c/code.go":          "package c\n",
		"testdata/x_test.go": plainTest, // skipped
	})
	in := &Instrumenter{}
	results, err := in.Tree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	for _, r := range results {
		if r.Status != StatusInjected {
			t.Errorf("%s: status = %v", r.Dir, r.Status)
		}
	}
}

func TestExternalTestPackageName(t *testing.T) {
	ext := `package svc_test

import "testing"

func TestExt(t *testing.T) {}
`
	dir := writeFiles(t, map[string]string{"ext_test.go": ext})
	in := &Instrumenter{}
	res, err := in.Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := os.ReadFile(filepath.Join(dir, GeneratedFileName))
	if !strings.Contains(string(body), "package svc_test") {
		t.Errorf("generated file has wrong package:\n%s", body)
	}
	_ = res
}

func TestCustomImportPath(t *testing.T) {
	dir := writeFiles(t, map[string]string{"a_test.go": plainTest})
	in := &Instrumenter{GoleakImport: "go.uber.org/goleak"}
	if _, err := in.Package(dir); err != nil {
		t.Fatal(err)
	}
	body, _ := os.ReadFile(filepath.Join(dir, GeneratedFileName))
	if !strings.Contains(string(body), `"go.uber.org/goleak"`) {
		t.Errorf("custom import missing:\n%s", body)
	}
}
