// Package instrument implements the build-pipeline test instrumentation
// of Section IV-A: transparently patching test targets so that GOLEAK is
// invoked at the end of every test-suite execution.
//
// In Go, the hook is the special TestMain function. For a test package
// without one, the instrumenter generates a companion _test.go file
// declaring
//
//	func TestMain(m *testing.M) { goleak.VerifyTestMain(m) }
//
// For a package that already declares TestMain, indiscriminate injection
// would produce a duplicate definition, so the instrumenter reports the
// conflict and points at the existing declaration; the deployment amends
// such files instead (a rewrite the Amend function performs when the
// existing TestMain has the canonical m.Run-forwarding shape).
package instrument

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// GeneratedFileName is the companion file the instrumenter writes.
const GeneratedFileName = "zz_generated_goleak_test.go"

// Status describes the instrumentation outcome for one package.
type Status int

const (
	// StatusInjected means a TestMain companion file was (or would be)
	// written.
	StatusInjected Status = iota
	// StatusAmended means an existing TestMain was rewritten to call
	// VerifyTestMain.
	StatusAmended
	// StatusConflict means an existing TestMain could not be amended
	// automatically.
	StatusConflict
	// StatusAlready means the package already invokes VerifyTestMain.
	StatusAlready
	// StatusNoTests means the directory has no test files.
	StatusNoTests
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusInjected:
		return "injected"
	case StatusAmended:
		return "amended"
	case StatusConflict:
		return "conflict"
	case StatusAlready:
		return "already-instrumented"
	case StatusNoTests:
		return "no-tests"
	}
	return "unknown"
}

// Result is one package's instrumentation outcome.
type Result struct {
	// Dir is the package directory.
	Dir string
	// Package is the test package name ("foo" or "foo_test").
	Package string
	// Status is the outcome.
	Status Status
	// File is the written or conflicting file, when applicable.
	File string
	// Detail carries the conflict explanation.
	Detail string
}

// Instrumenter configures instrumentation.
type Instrumenter struct {
	// GoleakImport is the import path of the goleak package; defaults
	// to "repro/goleak".
	GoleakImport string
	// DryRun computes results without writing files.
	DryRun bool
}

func (in *Instrumenter) importPath() string {
	if in.GoleakImport == "" {
		return "repro/goleak"
	}
	return in.GoleakImport
}

// Package instruments a single package directory.
func (in *Instrumenter) Package(dir string) (Result, error) {
	res := Result{Dir: dir}
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return res, fmt.Errorf("instrument: reading %s: %w", dir, err)
	}
	var testFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), "_test.go") {
			testFiles = append(testFiles, e.Name())
		}
	}
	sort.Strings(testFiles)
	if len(testFiles) == 0 {
		res.Status = StatusNoTests
		return res, nil
	}

	// Scan existing test files for TestMain and VerifyTestMain use.
	for _, name := range testFiles {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return res, fmt.Errorf("instrument: %w", err)
		}
		file, err := parser.ParseFile(fset, path, src, 0)
		if err != nil {
			continue // unparseable test files are the build's problem
		}
		if res.Package == "" {
			res.Package = file.Name.Name
		}
		decl := findTestMain(file)
		if decl == nil {
			continue
		}
		res.File = path
		if callsVerifyTestMain(decl) {
			res.Status = StatusAlready
			return res, nil
		}
		if body, ok := amendableTestMain(decl); ok {
			res.Status = StatusAmended
			if !in.DryRun {
				if err := in.rewriteTestMain(path, string(src), fset, decl, body); err != nil {
					return res, err
				}
			}
			return res, nil
		}
		res.Status = StatusConflict
		res.Detail = fmt.Sprintf("TestMain at %s has custom logic; amend manually",
			fset.Position(decl.Pos()))
		return res, nil
	}

	// No TestMain anywhere: inject the companion file.
	res.Status = StatusInjected
	res.File = filepath.Join(dir, GeneratedFileName)
	if !in.DryRun {
		content := in.generatedFile(res.Package)
		if err := os.WriteFile(res.File, []byte(content), 0o644); err != nil {
			return res, fmt.Errorf("instrument: writing %s: %w", res.File, err)
		}
	}
	return res, nil
}

// Tree instruments every package under root (recursively); directories
// named testdata or vendor are skipped.
func (in *Instrumenter) Tree(root string) ([]Result, error) {
	dirs := map[string]bool{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			switch info.Name() {
			case "testdata", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("instrument: walking %s: %w", root, err)
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	var out []Result
	for _, d := range sorted {
		res, err := in.Package(d)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// generatedFile renders the companion TestMain file.
func (in *Instrumenter) generatedFile(pkg string) string {
	if pkg == "" {
		pkg = "main"
	}
	return fmt.Sprintf(`// Code generated by goleakify; DO NOT EDIT.
//
// This file injects the GOLEAK verification hook into the test target:
// after all tests run, any lingering goroutine fails the target.

package %s

import (
	"testing"

	"%s"
)

func TestMain(m *testing.M) {
	goleak.VerifyTestMain(m)
}
`, pkg, in.importPath())
}

// findTestMain locates a func TestMain(m *testing.M) declaration.
func findTestMain(file *ast.File) *ast.FuncDecl {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv != nil || fn.Name.Name != "TestMain" {
			continue
		}
		if fn.Type.Params == nil || len(fn.Type.Params.List) != 1 {
			continue
		}
		return fn
	}
	return nil
}

// callsVerifyTestMain reports whether the declaration already invokes a
// VerifyTestMain.
func callsVerifyTestMain(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "VerifyTestMain" {
			found = true
			return false
		}
		return true
	})
	return found
}

// amendableTestMain recognises the canonical forwarding TestMain:
//
//	func TestMain(m *testing.M) { os.Exit(m.Run()) }
//
// whose body can be rewritten mechanically. Anything else (setup,
// teardown, flag handling) is a conflict for a human.
func amendableTestMain(fn *ast.FuncDecl) (string, bool) {
	if fn.Body == nil || len(fn.Body.List) != 1 {
		return "", false
	}
	expr, ok := fn.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Exit" {
		return "", false
	}
	inner, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return "", false
	}
	innerSel, ok := inner.Fun.(*ast.SelectorExpr)
	if !ok || innerSel.Sel.Name != "Run" {
		return "", false
	}
	recv, ok := innerSel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return recv.Name, true
}

// rewriteTestMain replaces the canonical forwarding body with the
// VerifyTestMain call and ensures the goleak import is present.
func (in *Instrumenter) rewriteTestMain(path, src string, fset *token.FileSet, fn *ast.FuncDecl, recv string) error {
	start := fset.Position(fn.Body.Lbrace).Offset
	end := fset.Position(fn.Body.Rbrace).Offset
	newBody := fmt.Sprintf("{\n\tgoleak.VerifyTestMain(%s)\n}", recv)
	out := src[:start] + newBody + src[end+1:]
	if !strings.Contains(out, `"`+in.importPath()+`"`) {
		out = addImport(out, in.importPath())
	}
	return os.WriteFile(path, []byte(out), 0o644)
}

// addImport inserts the import after the package clause; gofmt-correct
// grouping is the formatter's job, compilability is ours.
func addImport(src, path string) string {
	lineStart := 0
	for lineStart < len(src) {
		lineEnd := strings.IndexByte(src[lineStart:], '\n')
		if lineEnd < 0 {
			lineEnd = len(src) - lineStart
		}
		line := src[lineStart : lineStart+lineEnd]
		if strings.HasPrefix(strings.TrimSpace(line), "package ") {
			insertAt := lineStart + lineEnd
			if insertAt < len(src) {
				insertAt++ // past the newline
			}
			return src[:insertAt] + "\nimport \"" + path + "\"\n" + src[insertAt:]
		}
		lineStart += lineEnd + 1
	}
	return src
}
