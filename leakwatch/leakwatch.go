// Package leakwatch is an in-process goroutine-leak watchdog: the
// "runtime monitoring systems" direction the paper's conclusions call
// for, embedded in the service itself rather than run platform-side.
//
// A Watcher periodically samples the process's goroutines (the same
// capture primitive GOLEAK uses), tracks blocked-channel-operation
// concentrations per source location across samples, and invokes a
// callback when a location both exceeds a count threshold and persists
// across consecutive samples — the two signals that together separate
// leaks from transient congestion (Sections V-A and Fig 6).
//
//	w := leakwatch.New(leakwatch.Config{
//		Interval:  time.Minute,
//		Threshold: 1000,
//		OnLeak: func(r leakwatch.Report) { log.Printf("leak: %v", r) },
//	})
//	defer w.Stop()
package leakwatch

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/stack"
)

// Report is one suspected leak surfaced by the watchdog.
type Report struct {
	// Op is "send", "receive", or "select".
	Op string
	// Location is the blocked operation's file:line.
	Location string
	// Function is the blocking function.
	Function string
	// Count is the blocked-goroutine count in the triggering sample.
	Count int
	// ConsecutiveSamples is how many samples in a row the location
	// exceeded the threshold.
	ConsecutiveSamples int
	// At is the sample time.
	At time.Time
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("%d goroutines blocked on chan %s at %s (%s) for %d consecutive samples",
		r.Count, r.Op, r.Location, r.Function, r.ConsecutiveSamples)
}

// Config parameterises a Watcher.
type Config struct {
	// Interval between samples; default one minute.
	Interval time.Duration
	// Threshold is the per-location blocked count considered
	// suspicious; default 1000 (in-process populations are far smaller
	// than the fleet-wide 10K of LEAKPROF).
	Threshold int
	// Persistence is how many consecutive suspicious samples trigger a
	// report; default 2.
	Persistence int
	// OnLeak receives reports; required to observe anything. Reports
	// for a location repeat while it stays suspicious, with
	// ConsecutiveSamples growing.
	OnLeak func(Report)
	// capture overrides the stack source in tests.
	capture func() ([]*stack.Goroutine, error)
	// now overrides the clock in tests.
	now func() time.Time
}

// Watcher is a running watchdog.
type Watcher struct {
	cfg    Config
	stop   chan struct{}
	done   chan struct{}
	mu     sync.Mutex
	streak map[string]int // location key -> consecutive suspicious samples
}

// New starts a watchdog goroutine. Stop must be called to release it —
// the watchdog practices what it preaches.
func New(cfg Config) *Watcher {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Minute
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 1000
	}
	if cfg.Persistence <= 0 {
		cfg.Persistence = 2
	}
	if cfg.capture == nil {
		cfg.capture = stack.Current
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	w := &Watcher{
		cfg:    cfg,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		streak: map[string]int{},
	}
	go w.loop()
	return w
}

// Stop terminates the watchdog and waits for its goroutine to exit.
func (w *Watcher) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

// SampleNow takes one sample synchronously (outside the timer loop) and
// returns the reports it produced; useful for tests and for wiring the
// watchdog to external triggers (deploy hooks, alert probes).
func (w *Watcher) SampleNow() ([]Report, error) {
	return w.sample()
}

func (w *Watcher) loop() {
	defer close(w.done)
	ticker := time.NewTicker(w.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			reports, err := w.sample()
			if err != nil {
				continue
			}
			if w.cfg.OnLeak != nil {
				for _, r := range reports {
					w.cfg.OnLeak(r)
				}
			}
		case <-w.stop:
			return
		}
	}
}

func (w *Watcher) sample() ([]Report, error) {
	gs, err := w.cfg.capture()
	if err != nil {
		return nil, err
	}
	type locInfo struct {
		op    stack.BlockedOp
		count int
	}
	counts := map[string]*locInfo{}
	for _, g := range gs {
		op, ok := g.BlockedChannelOp()
		if !ok {
			continue
		}
		op.WaitTime = 0
		key := op.Op + "\x00" + op.Location
		if li := counts[key]; li != nil {
			li.count++
		} else {
			counts[key] = &locInfo{op: op, count: 1}
		}
	}

	at := w.cfg.now()
	var reports []Report
	w.mu.Lock()
	defer w.mu.Unlock()
	// Reset streaks for locations that dropped below threshold.
	for key := range w.streak {
		if li := counts[key]; li == nil || li.count < w.cfg.Threshold {
			delete(w.streak, key)
		}
	}
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		li := counts[key]
		if li.count < w.cfg.Threshold {
			continue
		}
		w.streak[key]++
		if w.streak[key] >= w.cfg.Persistence {
			reports = append(reports, Report{
				Op:                 li.op.Op,
				Location:           li.op.Location,
				Function:           li.op.Function,
				Count:              li.count,
				ConsecutiveSamples: w.streak[key],
				At:                 at,
			})
		}
	}
	return reports, nil
}
