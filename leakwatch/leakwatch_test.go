package leakwatch

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/patterns"
	"repro/internal/stack"
)

// fakeCapture returns canned goroutine populations, one per call.
func fakeCapture(samples ...[]*stack.Goroutine) func() ([]*stack.Goroutine, error) {
	i := 0
	return func() ([]*stack.Goroutine, error) {
		if i >= len(samples) {
			return samples[len(samples)-1], nil
		}
		s := samples[i]
		i++
		return s, nil
	}
}

func blocked(n int, op, fn, loc string) []*stack.Goroutine {
	state := map[string]string{"send": "chan send", "receive": "chan receive", "select": "select"}[op]
	file, _, _ := strings.Cut(loc, ":")
	out := make([]*stack.Goroutine, n)
	for i := range out {
		out[i] = &stack.Goroutine{
			ID: int64(i + 1), State: state,
			Frames: []stack.Frame{{Function: fn, File: file, Line: 9}},
		}
	}
	return out
}

func TestPersistenceGate(t *testing.T) {
	pop := blocked(50, "send", "svc.leak", "/svc/l.go")
	w := New(Config{
		Interval:    time.Hour, // the test drives sampling manually
		Threshold:   10,
		Persistence: 3,
		capture:     fakeCapture(pop, pop, pop, pop),
		now:         func() time.Time { return time.Unix(9, 0) },
	})
	defer w.Stop()

	for i := 1; i <= 2; i++ {
		reports, err := w.SampleNow()
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != 0 {
			t.Fatalf("sample %d reported before persistence satisfied: %v", i, reports)
		}
	}
	reports, err := w.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("third sample reports = %v", reports)
	}
	r := reports[0]
	if r.Count != 50 || r.Op != "send" || r.Location != "/svc/l.go:9" || r.ConsecutiveSamples != 3 {
		t.Errorf("report = %+v", r)
	}
	if !strings.Contains(r.String(), "chan send") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestStreakResetsWhenCongestionClears(t *testing.T) {
	hot := blocked(50, "receive", "svc.pool", "/svc/p.go")
	cold := blocked(2, "receive", "svc.pool", "/svc/p.go")
	w := New(Config{
		Interval: time.Hour, Threshold: 10, Persistence: 2,
		capture: fakeCapture(hot, cold, hot, hot),
	})
	defer w.Stop()

	if r, _ := w.SampleNow(); len(r) != 0 { // hot #1: streak 1
		t.Fatalf("sample 1: %v", r)
	}
	if r, _ := w.SampleNow(); len(r) != 0 { // cold: streak resets
		t.Fatalf("sample 2: %v", r)
	}
	if r, _ := w.SampleNow(); len(r) != 0 { // hot #1 again
		t.Fatalf("sample 3: %v", r)
	}
	r, _ := w.SampleNow() // hot #2: persistence reached
	if len(r) != 1 || r[0].ConsecutiveSamples != 2 {
		t.Fatalf("sample 4: %v", r)
	}
}

func TestCaptureErrorsAreNotFatal(t *testing.T) {
	w := New(Config{
		Interval: time.Hour, Threshold: 1, Persistence: 1,
		capture: func() ([]*stack.Goroutine, error) { return nil, errors.New("boom") },
	})
	defer w.Stop()
	if _, err := w.SampleNow(); err == nil {
		t.Error("SampleNow should surface capture errors")
	}
}

func TestWatcherAgainstLivePatternLeak(t *testing.T) {
	// End to end on the real process: a live leak crosses the
	// threshold in two consecutive samples and is reported via OnLeak.
	var mu sync.Mutex
	var got []Report
	w := New(Config{
		Interval:    5 * time.Millisecond,
		Threshold:   8,
		Persistence: 2,
		OnLeak: func(r Report) {
			mu.Lock()
			defer mu.Unlock()
			got = append(got, r)
		},
	})
	defer w.Stop()

	inst := patterns.MissingReceiver.Trigger(10)
	defer inst.Release()
	if err := patterns.AwaitKind(stack.KindChanSend, 10, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never reported the live leak")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	r := got[0]
	if r.Op != "send" || r.Count < 10 {
		t.Errorf("report = %+v", r)
	}
	if !strings.Contains(r.Function, "orphanSender") {
		t.Errorf("report function = %q", r.Function)
	}
}

func TestStopIsIdempotentAndReleasesGoroutine(t *testing.T) {
	w := New(Config{Interval: time.Millisecond, Threshold: 1})
	w.Stop()
	w.Stop() // second stop must not panic
	// After Stop, the watchdog goroutine is gone; goleak-style sweep.
	gs, err := stack.Current()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs {
		for _, f := range g.Frames {
			if strings.Contains(f.Function, "leakwatch.(*Watcher).loop") {
				t.Error("watchdog goroutine still running after Stop")
			}
		}
	}
}
